//! Batch outcomes and the aggregated throughput report.

use bregman::PointId;
use pagestore::IoStats;

/// The result of one query within a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Neighbours as `(id, divergence)`, ordered by increasing divergence.
    pub neighbors: Vec<(PointId, f64)>,
    /// Candidates the backend examined for this query.
    pub candidates: usize,
    /// Physical I/O performed for this query.
    pub io: IoStats,
    /// Wall-clock seconds this query spent inside the backend.
    pub latency_seconds: f64,
}

/// Latency distribution of a batch, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_ms: f64,
    /// Median (50th percentile).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest query.
    pub max_ms: f64,
}

/// Aggregated measurements of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Backend label the batch ran against.
    pub backend: String,
    /// Number of queries in the batch.
    pub queries: usize,
    /// `k` requested per query.
    pub k: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Queries per second (`queries / wall_seconds`).
    pub qps: f64,
    /// Per-query latency distribution.
    pub latency: LatencySummary,
    /// Sum of per-query candidate counts.
    pub total_candidates: usize,
    /// Mean candidates per query.
    pub avg_candidates: f64,
    /// Summed physical I/O over the batch.
    pub io: IoStats,
    /// Mean physical page reads per query (the paper's I/O-cost metric).
    pub avg_io_pages: f64,
}

impl ThroughputReport {
    /// Assemble a report from per-query outcomes.
    pub fn from_outcomes(
        backend: impl Into<String>,
        k: usize,
        threads: usize,
        wall_seconds: f64,
        outcomes: &[QueryOutcome],
    ) -> ThroughputReport {
        let queries = outcomes.len();
        let mut io = IoStats::default();
        let mut total_candidates = 0usize;
        let mut latencies_ms: Vec<f64> = outcomes.iter().map(|o| o.latency_seconds * 1e3).collect();
        for outcome in outcomes {
            io.accumulate(&outcome.io);
            total_candidates += outcome.candidates;
        }
        latencies_ms.sort_by(f64::total_cmp);
        let q = queries.max(1) as f64;
        let latency = LatencySummary {
            mean_ms: latencies_ms.iter().sum::<f64>() / q,
            p50_ms: percentile(&latencies_ms, 50.0),
            p95_ms: percentile(&latencies_ms, 95.0),
            p99_ms: percentile(&latencies_ms, 99.0),
            max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        };
        ThroughputReport {
            backend: backend.into(),
            queries,
            k,
            threads,
            wall_seconds,
            qps: if wall_seconds > 0.0 { queries as f64 / wall_seconds } else { 0.0 },
            latency,
            total_candidates,
            avg_candidates: total_candidates as f64 / q,
            io,
            avg_io_pages: io.pages_read as f64 / q,
        }
    }
}

/// One serialized metric value of a [`ThroughputReport`].
enum FieldValue<'a> {
    Str(&'a str),
    UInt(u64),
    F64(f64),
}

impl ThroughputReport {
    /// The report's metrics as one ordered `(key, value)` list — the single
    /// source of truth both serializers render, so the key set and order
    /// cannot drift between formats.
    fn fields(&self) -> [(&'static str, FieldValue<'_>); 17] {
        use FieldValue::{Str, UInt, F64};
        [
            ("backend", Str(&self.backend)),
            ("queries", UInt(self.queries as u64)),
            ("k", UInt(self.k as u64)),
            ("threads", UInt(self.threads as u64)),
            ("wall_seconds", F64(self.wall_seconds)),
            ("qps", F64(self.qps)),
            ("latency_mean_ms", F64(self.latency.mean_ms)),
            ("latency_p50_ms", F64(self.latency.p50_ms)),
            ("latency_p95_ms", F64(self.latency.p95_ms)),
            ("latency_p99_ms", F64(self.latency.p99_ms)),
            ("latency_max_ms", F64(self.latency.max_ms)),
            ("total_candidates", UInt(self.total_candidates as u64)),
            ("avg_candidates", F64(self.avg_candidates)),
            ("io_pages_read", UInt(self.io.pages_read)),
            ("io_cache_hits", UInt(self.io.cache_hits)),
            ("io_pages_written", UInt(self.io.pages_written)),
            ("avg_io_pages", F64(self.avg_io_pages)),
        ]
    }

    /// Render the report as one minimal JSON object (hand-rolled writer, no
    /// dependencies) with a **stable key set**, so bench runs can be written
    /// to `BENCH_*.json` files and diffed across PRs.
    ///
    /// Keys are emitted in a fixed order; floating-point values use Rust's
    /// shortest round-trip formatting and non-finite values are emitted as
    /// `null` (JSON has no NaN/Infinity).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        for (i, (key, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            match value {
                FieldValue::Str(s) => push_json_string(&mut out, s),
                FieldValue::UInt(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
                FieldValue::F64(_) => out.push_str("null"),
            }
        }
        out.push('}');
        out
    }

    /// Render the report as stable `key=value` lines (one metric per line,
    /// same keys and order as [`ThroughputReport::to_json`]), for grep-able
    /// logs and line-oriented diffing.
    pub fn to_kv_lines(&self) -> String {
        let mut out = String::with_capacity(512);
        for (key, value) in self.fields() {
            out.push_str(key);
            out.push('=');
            match value {
                FieldValue::Str(s) => out.push_str(s),
                FieldValue::UInt(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => out.push_str(&format!("{v}")),
            }
            out.push('\n');
        }
        out
    }
}

/// Append a JSON string literal with minimal escaping.
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} queries (k={}) on {} threads in {:.3}s — {:.0} QPS, \
             latency p50 {:.3}ms / p95 {:.3}ms / p99 {:.3}ms, \
             {:.1} candidates/query, {:.1} page reads/query",
            self.backend,
            self.queries,
            self.k,
            self.threads,
            self.wall_seconds,
            self.qps,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.avg_candidates,
            self.avg_io_pages,
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
pub fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn report_aggregates_outcomes() {
        let outcomes: Vec<QueryOutcome> = (0..10)
            .map(|i| QueryOutcome {
                neighbors: vec![(bregman::PointId(i as u32), 0.0)],
                candidates: 5,
                io: IoStats { pages_read: 2, cache_hits: 1, pages_written: 0 },
                latency_seconds: (i + 1) as f64 * 1e-3,
            })
            .collect();
        let report = ThroughputReport::from_outcomes("BP", 1, 2, 0.5, &outcomes);
        assert_eq!(report.queries, 10);
        assert_eq!(report.threads, 2);
        assert!((report.qps - 20.0).abs() < 1e-9);
        assert_eq!(report.total_candidates, 50);
        assert!((report.avg_candidates - 5.0).abs() < 1e-9);
        assert_eq!(report.io.pages_read, 20);
        assert!((report.avg_io_pages - 2.0).abs() < 1e-9);
        assert!((report.latency.p50_ms - 5.0).abs() < 1e-9);
        assert!((report.latency.max_ms - 10.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("BP"));
        assert!(text.contains("QPS"));
    }

    #[test]
    fn json_serialization_is_stable_and_parseable_shaped() {
        let outcomes: Vec<QueryOutcome> = (0..4)
            .map(|i| QueryOutcome {
                neighbors: vec![(bregman::PointId(i as u32), 0.5)],
                candidates: 3,
                io: IoStats { pages_read: 1, cache_hits: 0, pages_written: 0 },
                latency_seconds: 2e-3,
            })
            .collect();
        let report = ThroughputReport::from_outcomes("ABP(p=0.90)", 5, 2, 0.25, &outcomes);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"backend\":\"ABP(p=0.90)\""));
        assert!(json.contains("\"queries\":4"));
        assert!(json.contains("\"k\":5"));
        assert!(json.contains("\"qps\":16"));
        assert!(json.contains("\"io_pages_read\":4"));
        // Stable key order: every emitted key appears exactly once, in the
        // documented order.
        let keys = [
            "backend",
            "queries",
            "k",
            "threads",
            "wall_seconds",
            "qps",
            "latency_mean_ms",
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "latency_max_ms",
            "total_candidates",
            "avg_candidates",
            "io_pages_read",
            "io_cache_hits",
            "io_pages_written",
            "avg_io_pages",
        ];
        let mut last = 0;
        for key in keys {
            let pat = format!("\"{key}\":");
            let pos = json.find(&pat).unwrap_or_else(|| panic!("missing key {key}"));
            assert!(pos >= last, "key {key} out of order");
            assert_eq!(json.matches(&pat).count(), 1, "key {key} duplicated");
            last = pos;
        }
    }

    #[test]
    fn json_escapes_strings_and_nonfinite_floats() {
        let report = ThroughputReport {
            backend: "odd \"name\"\\with\nescapes".to_string(),
            queries: 0,
            k: 0,
            threads: 1,
            wall_seconds: 0.0,
            qps: f64::NAN,
            latency: LatencySummary::default(),
            total_candidates: 0,
            avg_candidates: 0.0,
            io: IoStats::default(),
            avg_io_pages: f64::INFINITY,
        };
        let json = report.to_json();
        assert!(json.contains("odd \\\"name\\\"\\\\with\\nescapes"));
        assert!(json.contains("\"qps\":null"));
        assert!(json.contains("\"avg_io_pages\":null"));
    }

    #[test]
    fn kv_lines_cover_the_same_keys_as_json() {
        let report = ThroughputReport::from_outcomes("BP", 3, 1, 1.0, &[]);
        let kv = report.to_kv_lines();
        assert!(kv.lines().count() == 17);
        for line in kv.lines() {
            let (key, _) = line.split_once('=').expect("every line is key=value");
            assert!(report.to_json().contains(&format!("\"{key}\":")), "json missing {key}");
        }
    }
}
