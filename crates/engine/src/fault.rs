//! Deterministic fault injection for chaos testing the serving tier.
//!
//! [`FaultInjector`] wraps any [`SearchBackend`] and applies a seeded fault
//! schedule in front of it: transient [`EngineError::Backend`] failures,
//! injected latency spikes, opt-in query-scoped panics, and permanent shard
//! death after a configured operation count. Every decision is a pure
//! function of the plan's seed, the query's content (coordinates and `k`)
//! and how many times that query has been attempted — never of wall-clock
//! time or thread scheduling — so a chaos run replays bit-identically under
//! the same seed, which is what lets the chaos suite assert exact recovery
//! and run in CI without flakes.
//!
//! The schedule is *attempt-gated*: whether a query is fault-prone at all
//! depends only on `(seed, query)`, while [`FaultPlan::transient_depth`]
//! bounds how many attempts fail before the same query deterministically
//! succeeds. A retrying caller therefore recovers the exact answer the
//! unwrapped backend would have produced — the property the fault-tolerant
//! scatter-gather layer is tested against.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bregman::DenseDataset;

use crate::backend::{BackendAnswer, Scratch, SearchBackend};
use crate::error::EngineError;
use crate::request::QueryOptions;

/// Domain-separation salts so the transient, latency and panic schedules
/// draw independent decisions from the same seed.
const SALT_TRANSIENT: u64 = 0x7472_616E_7369_656E; // "transien"
const SALT_LATENCY: u64 = 0x6C61_7465_6E63_7921; // "latency!"
const SALT_PANIC: u64 = 0x7061_6E69_6321_2121; // "panic!!!"

/// A seeded, deterministic fault schedule for one wrapped backend.
///
/// Rates are probabilities in `[0, 1]` evaluated per query (not per
/// operation): a query either is or is not on a schedule, decided by the
/// seed and the query's content. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Fraction of queries that fail with a transient
    /// [`EngineError::Backend`] on their first `transient_depth` attempts.
    pub transient_rate: f64,
    /// How many attempts of a fault-prone query fail before it succeeds.
    pub transient_depth: u64,
    /// Fraction of query attempts delayed by an injected latency spike.
    pub latency_rate: f64,
    /// Duration of each injected spike.
    pub latency: Duration,
    /// Fraction of queries that panic on their first `transient_depth`
    /// attempts (opt-in; default 0).
    pub panic_rate: f64,
    /// Permanent shard death: every operation after the first `n` fails
    /// unconditionally, forever. `Some(0)` means dead from the start.
    pub die_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            transient_rate: 0.0,
            transient_depth: 1,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
            panic_rate: 0.0,
            die_after: None,
        }
    }
}

impl FaultPlan {
    /// An empty schedule (injects nothing) under `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Fail this fraction of queries transiently.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate;
        self
    }

    /// Fail fault-prone queries for this many attempts before recovering.
    pub fn with_transient_depth(mut self, depth: u64) -> Self {
        self.transient_depth = depth;
        self
    }

    /// Delay this fraction of query attempts by `latency`.
    pub fn with_latency(mut self, rate: f64, latency: Duration) -> Self {
        self.latency_rate = rate;
        self.latency = latency;
        self
    }

    /// Panic on this fraction of queries (first `transient_depth` attempts).
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Kill the backend permanently after `ops` successful admissions.
    pub fn with_die_after(mut self, ops: u64) -> Self {
        self.die_after = Some(ops);
        self
    }

    /// Check the plan for out-of-range rates.
    pub fn validate(&self) -> Result<(), EngineError> {
        for (name, rate) in [
            ("transient_rate", self.transient_rate),
            ("latency_rate", self.latency_rate),
            ("panic_rate", self.panic_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(EngineError::Config(format!(
                    "fault plan {name} must be a probability in [0, 1], got {rate}"
                )));
            }
        }
        Ok(())
    }
}

/// Shared mutable state of one fault schedule: the operation counter that
/// drives permanent death, the per-query attempt counters that drive
/// transient recovery, and counts of every fault actually injected.
///
/// The state lives behind an [`Arc`] separate from the injector so a caller
/// that re-wraps a backend snapshot per batch (as the façade's sharded tier
/// does) can keep one schedule's history across all of them.
#[derive(Debug, Default)]
pub struct FaultState {
    ops: AtomicU64,
    attempts: Mutex<HashMap<u64, u64>>,
    transients: AtomicU64,
    spikes: AtomicU64,
    panics: AtomicU64,
    dead_rejections: AtomicU64,
}

impl FaultState {
    /// Fresh state: no operations seen, nothing injected.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operations admitted so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Transient failures injected so far.
    pub fn transients(&self) -> u64 {
        self.transients.load(Ordering::SeqCst)
    }

    /// Latency spikes injected so far.
    pub fn spikes(&self) -> u64 {
        self.spikes.load(Ordering::SeqCst)
    }

    /// Panics injected so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::SeqCst)
    }

    /// Operations rejected because the shard was permanently dead.
    pub fn dead_rejections(&self) -> u64 {
        self.dead_rejections.load(Ordering::SeqCst)
    }
}

/// A [`SearchBackend`] decorator that injects the faults a [`FaultPlan`]
/// schedules, deterministically. See the module docs for the fault model.
pub struct FaultInjector {
    inner: Arc<dyn SearchBackend>,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("inner", &self.inner.name())
            .field("plan", &self.plan)
            .finish()
    }
}

impl FaultInjector {
    /// Wrap `inner` under `plan` with fresh [`FaultState`].
    pub fn new(inner: Arc<dyn SearchBackend>, plan: FaultPlan) -> Result<Self, EngineError> {
        plan.validate()?;
        Ok(Self { inner, plan, state: Arc::new(FaultState::new()) })
    }

    /// Wrap `inner` under `plan`, continuing an existing schedule's
    /// history — the operation and attempt counters in `state` persist
    /// across injectors, so re-wrapping per batch keeps permanent death
    /// permanent and retry recovery monotone.
    pub fn with_state(
        inner: Arc<dyn SearchBackend>,
        plan: FaultPlan,
        state: Arc<FaultState>,
    ) -> Result<Self, EngineError> {
        plan.validate()?;
        Ok(Self { inner, plan, state })
    }

    /// The schedule's shared state (attempt counters, injected-fault
    /// counts).
    pub fn state(&self) -> Arc<FaultState> {
        self.state.clone()
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A uniform draw in `[0, 1)` that depends only on the seed, the
    /// query's content key, the attempt index and the schedule's salt.
    fn roll(&self, key: u64, attempt: u64, salt: u64) -> f64 {
        let x = splitmix64(
            self.plan.seed ^ splitmix64(key ^ salt) ^ splitmix64(attempt.wrapping_add(salt)),
        );
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Apply the schedule for one query attempt; `Ok(())` admits the query
    /// to the wrapped backend.
    fn fault_gate(&self, query: &[f64], k: usize) -> Result<(), EngineError> {
        let op = self.state.ops.fetch_add(1, Ordering::SeqCst);
        if let Some(limit) = self.plan.die_after {
            if op >= limit {
                self.state.dead_rejections.fetch_add(1, Ordering::SeqCst);
                return Err(EngineError::Backend(format!(
                    "injected fault: backend {} is permanently dead (op {op} past limit {limit})",
                    self.inner.name()
                )));
            }
        }
        let key = query_key(query, k);
        let attempt = {
            let mut attempts = self.state.attempts.lock().unwrap_or_else(|e| e.into_inner());
            let entry = attempts.entry(key).or_insert(0);
            let seen = *entry;
            *entry += 1;
            seen
        };
        if self.plan.latency_rate > 0.0
            && self.roll(key, attempt, SALT_LATENCY) < self.plan.latency_rate
        {
            self.state.spikes.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.plan.latency);
        }
        // Panic and transient schedules roll at attempt 0 only: whether the
        // query faults is a property of the query, how long it faults is
        // `transient_depth`. Retries past the depth recover exactly.
        if attempt < self.plan.transient_depth {
            if self.plan.panic_rate > 0.0 && self.roll(key, 0, SALT_PANIC) < self.plan.panic_rate {
                self.state.panics.fetch_add(1, Ordering::SeqCst);
                panic!(
                    "injected fault: query panicked in backend {} (attempt {attempt})",
                    self.inner.name()
                );
            }
            if self.plan.transient_rate > 0.0
                && self.roll(key, 0, SALT_TRANSIENT) < self.plan.transient_rate
            {
                self.state.transients.fetch_add(1, Ordering::SeqCst);
                return Err(EngineError::Backend(format!(
                    "injected fault: transient failure in backend {} (attempt {attempt} of {})",
                    self.inner.name(),
                    self.plan.transient_depth
                )));
            }
        }
        Ok(())
    }
}

impl SearchBackend for FaultInjector {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn new_scratch(&self) -> Scratch {
        self.inner.new_scratch()
    }

    fn knn(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
    ) -> Result<BackendAnswer, EngineError> {
        self.fault_gate(query, k)?;
        self.inner.knn(scratch, query, k)
    }

    fn knn_with_options(
        &self,
        scratch: &mut Scratch,
        query: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<BackendAnswer, EngineError> {
        self.fault_gate(query, k)?;
        self.inner.knn_with_options(scratch, query, k, options)
    }

    fn save(&self, dir: &Path) -> Result<(), EngineError> {
        self.inner.save(dir)
    }

    fn export_rows(&self) -> Result<DenseDataset, EngineError> {
        self.inner.export_rows()
    }
}

/// SplitMix64 — the same mixer the shard router and load generator use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the query's coordinate bits and `k`: identical queries share
/// one attempt counter regardless of scheduling, so fault decisions cannot
/// depend on which worker or batch carried the query.
fn query_key(query: &[f64], k: usize) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for value in query {
        for byte in value.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash ^= k as u64;
    hash.wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bregman::PointId;
    use pagestore::{BufferPool, IoStats};

    use super::*;

    /// A trivial in-memory backend answering every query with one fixed
    /// neighbor.
    #[derive(Debug)]
    struct FixedAnswer;

    impl SearchBackend for FixedAnswer {
        fn name(&self) -> &str {
            "fixed"
        }
        fn dim(&self) -> usize {
            2
        }
        fn len(&self) -> usize {
            1
        }
        fn new_scratch(&self) -> Scratch {
            Scratch::new(BufferPool::unbuffered())
        }
        fn knn(
            &self,
            _scratch: &mut Scratch,
            _query: &[f64],
            _k: usize,
        ) -> Result<BackendAnswer, EngineError> {
            Ok(BackendAnswer {
                neighbors: vec![(PointId(0), 1.0)],
                candidates: 1,
                io: IoStats::default(),
            })
        }
    }

    fn queries(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, (i * 3) as f64]).collect()
    }

    #[test]
    fn rates_are_validated() {
        let bad = FaultPlan::with_seed(1).with_transient_rate(1.5);
        assert!(matches!(
            FaultInjector::new(Arc::new(FixedAnswer), bad),
            Err(EngineError::Config(_))
        ));
        assert!(FaultPlan::with_seed(1).with_panic_rate(1.0).validate().is_ok());
    }

    #[test]
    fn transient_faults_are_deterministic_and_recover_after_depth() {
        let plan = FaultPlan::with_seed(0xC0FFEE).with_transient_rate(0.4).with_transient_depth(2);
        let run = |qs: &[Vec<f64>]| -> Vec<Vec<bool>> {
            let injector = FaultInjector::new(Arc::new(FixedAnswer), plan.clone()).unwrap();
            let mut scratch = injector.new_scratch();
            qs.iter()
                .map(|q| {
                    (0..4).map(|_| injector.knn(&mut scratch, q, 3).is_err()).collect::<Vec<_>>()
                })
                .collect()
        };
        let qs = queries(32);
        let first = run(&qs);
        let second = run(&qs);
        assert_eq!(first, second, "the schedule must replay bit-identically");
        let faulted = first.iter().filter(|outcomes| outcomes[0]).count();
        assert!(faulted > 0, "a 40% rate over 32 queries must hit something");
        assert!(faulted < 32, "a 40% rate must not hit everything");
        for outcomes in &first {
            // Attempt-gated: the first two attempts agree, everything past
            // the depth succeeds.
            assert_eq!(outcomes[0], outcomes[1]);
            assert!(!outcomes[2] && !outcomes[3], "queries must recover past the depth");
        }
    }

    #[test]
    fn death_is_permanent_and_state_survives_rewrapping() {
        let plan = FaultPlan::with_seed(7).with_die_after(3);
        let injector = FaultInjector::new(Arc::new(FixedAnswer), plan.clone()).unwrap();
        let state = injector.state();
        let mut scratch = injector.new_scratch();
        let qs = queries(5);
        let outcomes: Vec<bool> =
            qs.iter().map(|q| injector.knn(&mut scratch, q, 2).is_ok()).collect();
        assert_eq!(outcomes, vec![true, true, true, false, false]);
        // A fresh injector over the same state stays dead.
        let rewrapped = FaultInjector::with_state(Arc::new(FixedAnswer), plan, state).unwrap();
        assert!(rewrapped.knn(&mut scratch, &qs[0], 2).is_err());
        assert_eq!(rewrapped.state().dead_rejections(), 3);
    }

    #[test]
    fn panics_are_injected_on_schedule() {
        let plan = FaultPlan::with_seed(3).with_panic_rate(1.0);
        let injector = Arc::new(FaultInjector::new(Arc::new(FixedAnswer), plan).unwrap());
        let q = vec![1.0, 2.0];
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = injector.new_scratch();
            let _ = injector.knn(&mut scratch, &q, 1);
        }));
        std::panic::set_hook(hook);
        assert!(caught.is_err(), "a panic rate of 1.0 must panic the first attempt");
        assert_eq!(injector.state().panics(), 1);
        // The second attempt is past the default depth of 1 and succeeds.
        let mut scratch = injector.new_scratch();
        assert!(injector.knn(&mut scratch, &q, 1).is_ok());
    }
}
