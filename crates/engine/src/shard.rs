//! Scatter-gather across shard engines: one thread budget, one merge
//! discipline.
//!
//! A sharded deployment holds N per-shard backends in one process and
//! answers every query by fanning it out to all shards and merging the
//! per-shard top-k lists. This module supplies the two engine-level pieces
//! the façade's `ShardedIndex` builds on:
//!
//! * [`ShardedEngine`] — N inner [`QueryEngine`]s sharing **one** worker
//!   budget. The budget is split across shards ([`split_thread_budget`])
//!   rather than multiplied by them: N shards never run more than `budget`
//!   workers at once, whether the split gives each shard several workers
//!   (budget ≥ N) or rations the shards themselves through a work queue
//!   (budget < N).
//! * [`merge_neighbor_lists`] / [`merge_shard_outcomes`] — the gather side.
//!   Per-shard lists are merged by the engine's canonical `(distance, id)`
//!   total order — the same discipline [`DeltaOverlayBackend`] uses to merge
//!   a backend with its delta — so a merged result is bit-identical to what
//!   one unsharded backend over the union of the shards would return, as
//!   long as each shard reports exact distances.
//!
//! [`DeltaOverlayBackend`]: crate::DeltaOverlayBackend

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bregman::PointId;
use pagestore::IoStats;
use telemetry::{Counter, Histogram, Registry};

use crate::backend::SearchBackend;
use crate::engine::{BatchResult, EngineConfig, QueryEngine};
use crate::error::EngineError;
use crate::report::QueryOutcome;
use crate::request::EngineRequest;

/// How one worker-thread budget is divided across shard engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSplit {
    /// Worker threads assigned to each shard's engine.
    pub per_shard: Vec<usize>,
    /// How many shard engines may run at the same time.
    pub concurrent: usize,
}

impl ThreadSplit {
    /// The largest number of workers that can be live at once under this
    /// split: the sum of the `concurrent` largest per-shard assignments.
    pub fn max_live_workers(&self) -> usize {
        let mut sorted = self.per_shard.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(self.concurrent).sum()
    }
}

/// Split a worker budget across `shards` engines without oversubscribing.
///
/// With `budget >= shards` every shard runs concurrently and the budget is
/// divided as evenly as possible (the first `budget % shards` shards get
/// one extra worker). With `budget < shards` each shard gets a single
/// worker but only `budget` shards run at once — the rest wait in a work
/// queue. Either way at most `budget` workers are ever live, never
/// `shards × budget`.
pub fn split_thread_budget(budget: usize, shards: usize) -> ThreadSplit {
    if shards == 0 {
        return ThreadSplit { per_shard: Vec::new(), concurrent: 0 };
    }
    let budget = budget.max(1);
    if budget >= shards {
        let base = budget / shards;
        let extra = budget % shards;
        ThreadSplit {
            per_shard: (0..shards).map(|s| base + usize::from(s < extra)).collect(),
            concurrent: shards,
        }
    } else {
        ThreadSplit { per_shard: vec![1; shards], concurrent: budget }
    }
}

/// Merge per-shard neighbor lists into one top-`k` by the engine's
/// canonical `(distance, id)` total order.
///
/// With `dedup` (forest-style replicas sharing one id space) only the first
/// occurrence of an id survives; without it (capacity-style disjoint
/// shards) every entry is distinct by construction and the merge is exactly
/// the order an unsharded backend over the union would produce.
pub fn merge_neighbor_lists(
    lists: &[&[(PointId, f64)]],
    k: usize,
    dedup: bool,
) -> Vec<(PointId, f64)> {
    let mut merged: Vec<(PointId, f64)> =
        lists.iter().flat_map(|list| list.iter().copied()).collect();
    merged.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    if dedup {
        let mut seen = std::collections::BTreeSet::new();
        merged.retain(|(id, _)| seen.insert(*id));
    }
    merged.truncate(k);
    merged
}

/// Gather per-shard batch results into per-query outcomes.
///
/// `ks[qi]` is query `qi`'s requested `k`. Neighbor ids must already be in
/// the caller's global id space (remap before merging). Candidates and
/// physical I/O are summed across shards — every shard really did that
/// work — while the merged latency is the slowest shard's (the critical
/// path of a fan-out).
pub fn merge_shard_outcomes(
    shard_results: &[BatchResult],
    ks: &[usize],
    dedup: bool,
) -> Vec<QueryOutcome> {
    (0..ks.len())
        .map(|qi| {
            let lists: Vec<&[(PointId, f64)]> =
                shard_results.iter().map(|r| r.outcomes[qi].neighbors.as_slice()).collect();
            let mut io = IoStats::default();
            let mut candidates = 0usize;
            let mut latency_seconds = 0.0f64;
            for result in shard_results {
                let outcome = &result.outcomes[qi];
                io.accumulate(&outcome.io);
                candidates += outcome.candidates;
                latency_seconds = latency_seconds.max(outcome.latency_seconds);
            }
            QueryOutcome {
                neighbors: merge_neighbor_lists(&lists, ks[qi], dedup),
                candidates,
                io,
                latency_seconds,
            }
        })
        .collect()
}

/// N per-shard [`QueryEngine`]s behind one shared worker budget.
///
/// Construction splits the budget with [`split_thread_budget`];
/// [`ShardedEngine::run_requests`] then drives every shard over the same
/// request slice and returns the per-shard [`BatchResult`]s in shard order
/// (gathering — id remapping, merging, report aggregation — is the
/// caller's, because only the caller knows the shard → global id mapping).
///
/// Each shard's engine inherits `scratch` behavior from the config template
/// passed to [`ShardedEngine::with_config`]; per-shard results keep the
/// engine's own guarantee of being independent of worker scheduling, so a
/// sharded run is deterministic for any budget.
pub struct ShardedEngine {
    engines: Vec<QueryEngine>,
    concurrent: usize,
    budget: usize,
    /// Completed scatter-gather fan-outs.
    fanouts: Arc<Counter>,
    /// Wall time of each whole fan-out (scatter + slowest shard + gather
    /// queueing), in nanoseconds.
    fanout_ns: Arc<Histogram>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.engines.len())
            .field("budget", &self.budget)
            .field("concurrent", &self.concurrent)
            .finish()
    }
}

impl ShardedEngine {
    /// A sharded engine over `backends` sharing `budget` worker threads,
    /// with default per-shard configuration (cold scratch).
    pub fn new(
        backends: Vec<Arc<dyn SearchBackend>>,
        budget: usize,
    ) -> Result<ShardedEngine, EngineError> {
        Self::with_config(backends, budget, EngineConfig::default())
    }

    /// A sharded engine with an explicit per-shard config template; the
    /// template's thread count is ignored (the split budget replaces it).
    pub fn with_config(
        backends: Vec<Arc<dyn SearchBackend>>,
        budget: usize,
        template: EngineConfig,
    ) -> Result<ShardedEngine, EngineError> {
        if backends.is_empty() {
            return Err(EngineError::Config(
                "a sharded engine needs at least one shard backend".to_string(),
            ));
        }
        if budget == 0 {
            return Err(EngineError::Config("shard worker budget must be at least 1".to_string()));
        }
        let split = split_thread_budget(budget, backends.len());
        let engines = backends
            .into_iter()
            .zip(split.per_shard.iter())
            .map(|(backend, &threads)| {
                let mut config = template;
                config.threads = Some(threads);
                QueryEngine::with_config(backend, config)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            engines,
            concurrent: split.concurrent,
            budget,
            fanouts: Arc::new(Counter::new()),
            fanout_ns: Arc::new(Histogram::new()),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The shared worker budget the construction split.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// How many shard engines run at once.
    pub fn concurrent_shards(&self) -> usize {
        self.concurrent
    }

    /// The per-shard worker counts the budget was split into.
    pub fn shard_threads(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.threads()).collect()
    }

    /// The inner per-shard engines, in shard order.
    pub fn engines(&self) -> &[QueryEngine] {
        &self.engines
    }

    /// Register this tier's telemetry in `registry`: fan-out counters and
    /// wall-time histogram under `prefix.fanouts` / `prefix.fanout_ns`,
    /// plus every shard engine's metrics under `prefix.shard<i>` (see
    /// [`crate::EngineMetrics::bind`] for the per-engine names).
    pub fn bind_telemetry(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.fanouts"), self.fanouts.clone());
        registry.register_histogram(&format!("{prefix}.fanout_ns"), self.fanout_ns.clone());
        for (index, engine) in self.engines.iter().enumerate() {
            engine.bind_telemetry(registry, &format!("{prefix}.shard{index}"));
        }
    }

    /// Run the same request slice against every shard, returning per-shard
    /// results in shard order.
    ///
    /// Shards are pulled from an atomic work queue by `concurrent_shards`
    /// coordinator threads, each of which runs its shard's engine with that
    /// shard's slice of the budget — so no more than `budget` workers are
    /// ever searching at once. If any shard fails, the first failure by
    /// shard index is returned.
    pub fn run_requests(
        &self,
        requests: &[EngineRequest<'_>],
    ) -> Result<Vec<BatchResult>, EngineError> {
        let shards = self.engines.len();
        let engines = &self.engines;
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<BatchResult, EngineError>>>> =
            Mutex::new((0..shards).map(|_| None).collect());
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.concurrent.min(shards) {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || loop {
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    let result = engines[shard].run_requests(requests);
                    slots.lock().unwrap_or_else(|e| e.into_inner())[shard] = Some(result);
                });
            }
        });
        self.fanouts.inc();
        self.fanout_ns.record_duration(started.elapsed());
        slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every shard produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_divides_evenly_when_budget_covers_shards() {
        let split = split_thread_budget(8, 3);
        assert_eq!(split.per_shard, vec![3, 3, 2]);
        assert_eq!(split.concurrent, 3);
        assert_eq!(split.max_live_workers(), 8);

        let split = split_thread_budget(4, 4);
        assert_eq!(split.per_shard, vec![1, 1, 1, 1]);
        assert_eq!(split.max_live_workers(), 4);
    }

    #[test]
    fn split_rations_shards_when_budget_is_short() {
        let split = split_thread_budget(3, 8);
        assert_eq!(split.per_shard, vec![1; 8]);
        assert_eq!(split.concurrent, 3);
        assert_eq!(split.max_live_workers(), 3);
    }

    #[test]
    fn split_never_exceeds_the_budget() {
        for budget in 1..=12 {
            for shards in 1..=12 {
                let split = split_thread_budget(budget, shards);
                assert!(
                    split.max_live_workers() <= budget,
                    "budget {budget} over {shards} shards runs {} workers",
                    split.max_live_workers()
                );
                assert_eq!(split.per_shard.iter().sum::<usize>(), budget.max(shards));
            }
        }
        assert_eq!(split_thread_budget(4, 0).per_shard, Vec::<usize>::new());
    }

    #[test]
    fn merge_is_the_delta_overlay_order_and_dedup_keeps_the_best() {
        let a = [(PointId(4), 1.0), (PointId(9), 2.0)];
        let b = [(PointId(2), 1.0), (PointId(4), 1.0), (PointId(7), 0.5)];
        // Without dedup: ties break by id, duplicates survive.
        let merged = merge_neighbor_lists(&[&a, &b], 4, false);
        assert_eq!(
            merged,
            vec![(PointId(7), 0.5), (PointId(2), 1.0), (PointId(4), 1.0), (PointId(4), 1.0)]
        );
        // With dedup: the duplicate id collapses to one entry.
        let merged = merge_neighbor_lists(&[&a, &b], 4, true);
        assert_eq!(
            merged,
            vec![(PointId(7), 0.5), (PointId(2), 1.0), (PointId(4), 1.0), (PointId(9), 2.0)]
        );
        assert!(merge_neighbor_lists(&[], 3, false).is_empty());
    }
}
