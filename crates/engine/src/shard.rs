//! Scatter-gather across shard engines: one thread budget, one merge
//! discipline.
//!
//! A sharded deployment holds N per-shard backends in one process and
//! answers every query by fanning it out to all shards and merging the
//! per-shard top-k lists. This module supplies the two engine-level pieces
//! the façade's `ShardedIndex` builds on:
//!
//! * [`ShardedEngine`] — N inner [`QueryEngine`]s sharing **one** worker
//!   budget. The budget is split across shards ([`split_thread_budget`])
//!   rather than multiplied by them: N shards never run more than `budget`
//!   workers at once, whether the split gives each shard several workers
//!   (budget ≥ N) or rations the shards themselves through a work queue
//!   (budget < N).
//! * [`merge_neighbor_lists`] / [`merge_shard_outcomes`] — the gather side.
//!   Per-shard lists are merged by the engine's canonical `(distance, id)`
//!   total order — the same discipline [`DeltaOverlayBackend`] uses to merge
//!   a backend with its delta — so a merged result is bit-identical to what
//!   one unsharded backend over the union of the shards would return, as
//!   long as each shard reports exact distances.
//!
//! [`DeltaOverlayBackend`]: crate::DeltaOverlayBackend

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bregman::PointId;
use pagestore::IoStats;
use telemetry::{Counter, Gauge, Histogram, Registry};

use crate::backend::SearchBackend;
use crate::engine::{BatchResult, EngineConfig, QueryEngine};
use crate::error::EngineError;
use crate::report::QueryOutcome;
use crate::request::EngineRequest;

/// How one worker-thread budget is divided across shard engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSplit {
    /// Worker threads assigned to each shard's engine.
    pub per_shard: Vec<usize>,
    /// How many shard engines may run at the same time.
    pub concurrent: usize,
}

impl ThreadSplit {
    /// The largest number of workers that can be live at once under this
    /// split: the sum of the `concurrent` largest per-shard assignments.
    pub fn max_live_workers(&self) -> usize {
        let mut sorted = self.per_shard.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(self.concurrent).sum()
    }
}

/// Split a worker budget across `shards` engines without oversubscribing.
///
/// With `budget >= shards` every shard runs concurrently and the budget is
/// divided as evenly as possible (the first `budget % shards` shards get
/// one extra worker). With `budget < shards` each shard gets a single
/// worker but only `budget` shards run at once — the rest wait in a work
/// queue. Either way at most `budget` workers are ever live, never
/// `shards × budget`.
pub fn split_thread_budget(budget: usize, shards: usize) -> ThreadSplit {
    if shards == 0 {
        return ThreadSplit { per_shard: Vec::new(), concurrent: 0 };
    }
    let budget = budget.max(1);
    if budget >= shards {
        let base = budget / shards;
        let extra = budget % shards;
        ThreadSplit {
            per_shard: (0..shards).map(|s| base + usize::from(s < extra)).collect(),
            concurrent: shards,
        }
    } else {
        ThreadSplit { per_shard: vec![1; shards], concurrent: budget }
    }
}

/// Merge per-shard neighbor lists into one top-`k` by the engine's
/// canonical `(distance, id)` total order.
///
/// With `dedup` (forest-style replicas sharing one id space) only the first
/// occurrence of an id survives; without it (capacity-style disjoint
/// shards) every entry is distinct by construction and the merge is exactly
/// the order an unsharded backend over the union would produce.
pub fn merge_neighbor_lists(
    lists: &[&[(PointId, f64)]],
    k: usize,
    dedup: bool,
) -> Vec<(PointId, f64)> {
    let mut merged: Vec<(PointId, f64)> =
        lists.iter().flat_map(|list| list.iter().copied()).collect();
    merged.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    if dedup {
        let mut seen = std::collections::BTreeSet::new();
        merged.retain(|(id, _)| seen.insert(*id));
    }
    merged.truncate(k);
    merged
}

/// Gather per-shard batch results into per-query outcomes.
///
/// `ks[qi]` is query `qi`'s requested `k`. Neighbor ids must already be in
/// the caller's global id space (remap before merging). Candidates and
/// physical I/O are summed across shards — every shard really did that
/// work — while the merged latency is the slowest shard's (the critical
/// path of a fan-out).
pub fn merge_shard_outcomes(
    shard_results: &[BatchResult],
    ks: &[usize],
    dedup: bool,
) -> Vec<QueryOutcome> {
    (0..ks.len())
        .map(|qi| {
            let lists: Vec<&[(PointId, f64)]> =
                shard_results.iter().map(|r| r.outcomes[qi].neighbors.as_slice()).collect();
            let mut io = IoStats::default();
            let mut candidates = 0usize;
            let mut latency_seconds = 0.0f64;
            for result in shard_results {
                let outcome = &result.outcomes[qi];
                io.accumulate(&outcome.io);
                candidates += outcome.candidates;
                latency_seconds = latency_seconds.max(outcome.latency_seconds);
            }
            QueryOutcome {
                neighbors: merge_neighbor_lists(&lists, ks[qi], dedup),
                candidates,
                io,
                latency_seconds,
            }
        })
        .collect()
}

/// N per-shard [`QueryEngine`]s behind one shared worker budget.
///
/// Construction splits the budget with [`split_thread_budget`];
/// [`ShardedEngine::run_requests`] then drives every shard over the same
/// request slice and returns the per-shard [`BatchResult`]s in shard order
/// (gathering — id remapping, merging, report aggregation — is the
/// caller's, because only the caller knows the shard → global id mapping).
///
/// Each shard's engine inherits `scratch` behavior from the config template
/// passed to [`ShardedEngine::with_config`]; per-shard results keep the
/// engine's own guarantee of being independent of worker scheduling, so a
/// sharded run is deterministic for any budget.
pub struct ShardedEngine {
    engines: Vec<QueryEngine>,
    concurrent: usize,
    budget: usize,
    /// Completed scatter-gather fan-outs.
    fanouts: Arc<Counter>,
    /// Wall time of each whole fan-out (scatter + slowest shard + gather
    /// queueing), in nanoseconds.
    fanout_ns: Arc<Histogram>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.engines.len())
            .field("budget", &self.budget)
            .field("concurrent", &self.concurrent)
            .finish()
    }
}

impl ShardedEngine {
    /// A sharded engine over `backends` sharing `budget` worker threads,
    /// with default per-shard configuration (cold scratch).
    pub fn new(
        backends: Vec<Arc<dyn SearchBackend>>,
        budget: usize,
    ) -> Result<ShardedEngine, EngineError> {
        Self::with_config(backends, budget, EngineConfig::default())
    }

    /// A sharded engine with an explicit per-shard config template; the
    /// template's thread count is ignored (the split budget replaces it).
    pub fn with_config(
        backends: Vec<Arc<dyn SearchBackend>>,
        budget: usize,
        template: EngineConfig,
    ) -> Result<ShardedEngine, EngineError> {
        if backends.is_empty() {
            return Err(EngineError::Config(
                "a sharded engine needs at least one shard backend".to_string(),
            ));
        }
        if budget == 0 {
            return Err(EngineError::Config("shard worker budget must be at least 1".to_string()));
        }
        let split = split_thread_budget(budget, backends.len());
        let engines = backends
            .into_iter()
            .zip(split.per_shard.iter())
            .map(|(backend, &threads)| {
                let mut config = template;
                config.threads = Some(threads);
                QueryEngine::with_config(backend, config)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            engines,
            concurrent: split.concurrent,
            budget,
            fanouts: Arc::new(Counter::new()),
            fanout_ns: Arc::new(Histogram::new()),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The shared worker budget the construction split.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// How many shard engines run at once.
    pub fn concurrent_shards(&self) -> usize {
        self.concurrent
    }

    /// The per-shard worker counts the budget was split into.
    pub fn shard_threads(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.threads()).collect()
    }

    /// The inner per-shard engines, in shard order.
    pub fn engines(&self) -> &[QueryEngine] {
        &self.engines
    }

    /// Register this tier's telemetry in `registry`: fan-out counters and
    /// wall-time histogram under `prefix.fanouts` / `prefix.fanout_ns`,
    /// plus every shard engine's metrics under `prefix.shard<i>` (see
    /// [`crate::EngineMetrics::bind`] for the per-engine names).
    pub fn bind_telemetry(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.fanouts"), self.fanouts.clone());
        registry.register_histogram(&format!("{prefix}.fanout_ns"), self.fanout_ns.clone());
        for (index, engine) in self.engines.iter().enumerate() {
            engine.bind_telemetry(registry, &format!("{prefix}.shard{index}"));
        }
    }

    /// Run the same request slice against every shard, returning per-shard
    /// results in shard order.
    ///
    /// Shards are pulled from an atomic work queue by `concurrent_shards`
    /// coordinator threads, each of which runs its shard's engine with that
    /// shard's slice of the budget — so no more than `budget` workers are
    /// ever searching at once. If any shard fails, the first failure by
    /// shard index is returned.
    pub fn run_requests(
        &self,
        requests: &[EngineRequest<'_>],
    ) -> Result<Vec<BatchResult>, EngineError> {
        let shards = self.engines.len();
        let engines = &self.engines;
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<BatchResult, EngineError>>>> =
            Mutex::new((0..shards).map(|_| None).collect());
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.concurrent.min(shards) {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || loop {
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    let result = engines[shard].run_requests(requests);
                    slots.lock().unwrap_or_else(|e| e.into_inner())[shard] = Some(result);
                });
            }
        });
        self.fanouts.inc();
        self.fanout_ns.record_duration(started.elapsed());
        slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every shard produced a result"))
            .collect()
    }

    /// Run the same request slice against every shard under a
    /// [`FanoutPolicy`], returning per-shard outcomes in shard order —
    /// `Ok` for shards that answered, [`ShardFailure`] for shards that
    /// exhausted their retry budget, hit the soft deadline, or were skipped
    /// by an open breaker.
    ///
    /// Unlike [`ShardedEngine::run_requests`], a failing shard does not
    /// fail the fan-out: the caller decides whether the surviving shards
    /// constitute an acceptable (degraded or partial) answer. Per-shard
    /// dispatch is wrapped in `catch_unwind`, so a panicking backend is a
    /// recorded failure, not a crashed fan-out. Breaker transitions, retry
    /// counts and panics are recorded in `health`, which the caller keeps
    /// alive across fan-outs (breaker state must outlive any one batch).
    pub fn run_requests_with_policy(
        &self,
        requests: &[EngineRequest<'_>],
        policy: &FanoutPolicy,
        health: &ShardHealth,
    ) -> Vec<Result<BatchResult, ShardFailure>> {
        let shards = self.engines.len();
        assert_eq!(
            health.shards(),
            shards,
            "the health table must track exactly this engine's shards"
        );
        let engines = &self.engines;
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<BatchResult, ShardFailure>>>> =
            Mutex::new((0..shards).map(|_| None).collect());
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.concurrent.min(shards) {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || loop {
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    let result = dispatch_shard_with_policy(
                        &engines[shard],
                        shard,
                        requests,
                        policy,
                        health,
                        started,
                    );
                    slots.lock().unwrap_or_else(|e| e.into_inner())[shard] = Some(result);
                });
            }
        });
        self.fanouts.inc();
        self.fanout_ns.record_duration(started.elapsed());
        slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|slot| slot.expect("every shard produced a result"))
            .collect()
    }
}

/// Drive one shard's engine under the policy: breaker admission, bounded
/// retries with decorrelated-jitter backoff, a soft deadline checked
/// between attempts, and panic isolation around the dispatch.
fn dispatch_shard_with_policy(
    engine: &QueryEngine,
    shard: usize,
    requests: &[EngineRequest<'_>],
    policy: &FanoutPolicy,
    health: &ShardHealth,
    fanout_started: Instant,
) -> Result<BatchResult, ShardFailure> {
    if !health.admit(shard) {
        return Err(ShardFailure {
            error: EngineError::Backend(format!(
                "shard {shard} skipped: circuit breaker open ({} consecutive failures)",
                health.consecutive_failures(shard)
            )),
            retries: 0,
            panicked: false,
            skipped: true,
            deadline_exceeded: false,
        });
    }
    let mut retries = 0u32;
    let mut panicked = false;
    let mut deadline_exceeded = false;
    let mut previous_backoff = policy.backoff_base;
    let mut last_error = EngineError::Backend(format!("shard {shard} produced no attempt"));
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            // Soft deadline: never preempt a running attempt, but stop
            // scheduling new ones once the fan-out budget is spent.
            if let Some(deadline) = policy.deadline {
                if fanout_started.elapsed() >= deadline {
                    deadline_exceeded = true;
                    break;
                }
            }
            let backoff = decorrelated_backoff(policy, shard, attempt, previous_backoff);
            previous_backoff = backoff;
            health.retries.inc();
            retries += 1;
            std::thread::sleep(backoff);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_requests(requests)
        }));
        match outcome {
            Ok(Ok(batch)) => {
                health.on_success(shard);
                return Ok(batch);
            }
            Ok(Err(error)) => {
                // Typed rejections are deterministic: retrying an
                // unsupported option or a misconfiguration cannot succeed.
                let retryable = !matches!(
                    error,
                    EngineError::Config(_) | EngineError::UnsupportedOption { .. }
                );
                last_error = error;
                if !retryable {
                    break;
                }
            }
            Err(payload) => {
                panicked = true;
                health.shard_panics.inc();
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                last_error =
                    EngineError::Backend(format!("shard {shard} dispatch panicked: {message}"));
            }
        }
    }
    health.on_failure(shard, policy);
    Err(ShardFailure { error: last_error, retries, panicked, skipped: false, deadline_exceeded })
}

/// Deadline, retry and circuit-breaker policy for a resilient fan-out
/// ([`ShardedEngine::run_requests_with_policy`]).
///
/// Retries use *decorrelated jitter*: each backoff is drawn uniformly from
/// `[base, 3 × previous]` and capped, with the draw seeded from
/// `(seed, shard, attempt)` — so a retry schedule replays identically under
/// the same seed, which keeps chaos runs reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutPolicy {
    /// Soft per-shard deadline measured from the start of the fan-out.
    /// Checked *between* attempts (a running engine batch is never
    /// preempted): once exceeded, no further retries are attempted, but a
    /// completed over-deadline attempt still returns its result.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Lower bound of every backoff draw.
    pub backoff_base: Duration,
    /// Upper cap on any backoff draw.
    pub backoff_cap: Duration,
    /// Consecutive fan-out failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Fan-outs an open breaker skips before admitting a half-open probe.
    /// Counted in fan-outs, not wall time, so breaker recovery is
    /// deterministic under replay.
    pub breaker_cooldown: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for FanoutPolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 3,
            breaker_cooldown: 2,
            seed: 0x5EED,
        }
    }
}

impl FanoutPolicy {
    /// Set the soft per-shard deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the retry budget (retries after the first attempt).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the backoff window (`base` lower bound, `cap` upper bound).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Set the breaker's open threshold and cooldown (in fan-outs).
    pub fn with_breaker(mut self, threshold: u32, cooldown: u32) -> Self {
        self.breaker_threshold = threshold.max(1);
        self.breaker_cooldown = cooldown;
        self
    }

    /// Set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The three circuit-breaker states of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every fan-out is dispatched.
    Closed,
    /// Tripping: fan-outs are skipped (recorded as failures without
    /// dispatch) until the cooldown elapses.
    Open,
    /// Probing: one fan-out is admitted; success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for the telemetry gauge (0 closed, 1 open,
    /// 2 half-open).
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct ShardBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_remaining: u32,
}

/// Per-shard circuit-breaker table shared across fan-outs (and across the
/// short-lived [`ShardedEngine`]s a serving façade builds per batch).
///
/// The table also owns the availability counters the resilient fan-out
/// records into: `shard_retries` (retry attempts dispatched) and
/// `breaker_opens` (Closed → Open transitions only — a failed half-open
/// probe re-opens the breaker without incrementing, so "the breaker opened
/// once" stays assertable under probing).
#[derive(Debug)]
pub struct ShardHealth {
    shards: Vec<Mutex<ShardBreaker>>,
    retries: Arc<Counter>,
    breaker_opens: Arc<Counter>,
    shard_panics: Arc<Counter>,
    states: Vec<Arc<Gauge>>,
}

impl ShardHealth {
    /// A health table for `shards` shards, all breakers closed.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardBreaker {
                        state: BreakerState::Closed,
                        consecutive_failures: 0,
                        cooldown_remaining: 0,
                    })
                })
                .collect(),
            retries: Arc::new(Counter::new()),
            breaker_opens: Arc::new(Counter::new()),
            shard_panics: Arc::new(Counter::new()),
            states: (0..shards).map(|_| Arc::new(Gauge::new())).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The breaker state of `shard`.
    pub fn state(&self, shard: usize) -> BreakerState {
        self.shards[shard].lock().unwrap_or_else(|e| e.into_inner()).state
    }

    /// Consecutive fan-out failures recorded against `shard`.
    pub fn consecutive_failures(&self, shard: usize) -> u32 {
        self.shards[shard].lock().unwrap_or_else(|e| e.into_inner()).consecutive_failures
    }

    /// Retry attempts dispatched across all shards.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Closed → Open breaker transitions across all shards.
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_opens.get()
    }

    /// Shard dispatches that panicked (caught at the fan-out boundary).
    pub fn shard_panics(&self) -> u64 {
        self.shard_panics.get()
    }

    /// Register the table in `registry`: counters `prefix.shard_retries`,
    /// `prefix.breaker_opens` and `prefix.shard_panics`, plus one gauge
    /// `prefix.shard<i>.breaker_state` per shard (see
    /// [`BreakerState::as_gauge`] for the encoding).
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.shard_retries"), self.retries.clone());
        registry.register_counter(&format!("{prefix}.breaker_opens"), self.breaker_opens.clone());
        registry.register_counter(&format!("{prefix}.shard_panics"), self.shard_panics.clone());
        for (index, gauge) in self.states.iter().enumerate() {
            registry.register_gauge(&format!("{prefix}.shard{index}.breaker_state"), gauge.clone());
        }
    }

    /// Whether this fan-out may dispatch to `shard`. An open breaker counts
    /// down its cooldown and rejects; when the cooldown reaches zero the
    /// breaker moves to half-open and admits one probe.
    fn admit(&self, shard: usize) -> bool {
        let mut breaker = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
        match breaker.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if breaker.cooldown_remaining > 0 {
                    breaker.cooldown_remaining -= 1;
                    false
                } else {
                    breaker.state = BreakerState::HalfOpen;
                    self.states[shard].set(breaker.state.as_gauge());
                    true
                }
            }
        }
    }

    /// Record a successful dispatch: the breaker closes and the failure
    /// streak resets.
    fn on_success(&self, shard: usize) {
        let mut breaker = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
        breaker.state = BreakerState::Closed;
        breaker.consecutive_failures = 0;
        self.states[shard].set(breaker.state.as_gauge());
    }

    /// Record a failed dispatch (after the retry budget): a closed breaker
    /// opens at the threshold (incrementing `breaker_opens`); a failed
    /// half-open probe re-opens without incrementing.
    fn on_failure(&self, shard: usize, policy: &FanoutPolicy) {
        let mut breaker = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
        breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
        match breaker.state {
            BreakerState::Closed => {
                if breaker.consecutive_failures >= policy.breaker_threshold {
                    breaker.state = BreakerState::Open;
                    breaker.cooldown_remaining = policy.breaker_cooldown;
                    self.breaker_opens.inc();
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => {
                breaker.state = BreakerState::Open;
                breaker.cooldown_remaining = policy.breaker_cooldown;
            }
        }
        self.states[shard].set(breaker.state.as_gauge());
    }
}

/// Why one shard produced no result in a resilient fan-out.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// The last error observed (or a synthetic one for skips).
    pub error: EngineError,
    /// Retries dispatched before giving up.
    pub retries: u32,
    /// Whether a dispatch panicked (caught at the fan-out boundary).
    pub panicked: bool,
    /// Whether the breaker was open and the shard was never dispatched.
    pub skipped: bool,
    /// Whether the soft deadline cut the retry budget short.
    pub deadline_exceeded: bool,
}

/// Deterministic decorrelated-jitter backoff: uniform in
/// `[base, 3 × previous]`, capped, seeded by `(seed, shard, attempt)`.
fn decorrelated_backoff(
    policy: &FanoutPolicy,
    shard: usize,
    attempt: u32,
    previous: Duration,
) -> Duration {
    let base = policy.backoff_base.as_nanos() as u64;
    let high = (previous.as_nanos() as u64).saturating_mul(3).max(base.saturating_add(1));
    let x = splitmix64(
        policy.seed ^ splitmix64(shard as u64 ^ 0x5348_4152_4442_4F21) ^ u64::from(attempt),
    );
    let span = high - base;
    let jittered = base + (x % span.max(1));
    Duration::from_nanos(jittered).min(policy.backoff_cap)
}

/// SplitMix64 — the workspace's standard seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_divides_evenly_when_budget_covers_shards() {
        let split = split_thread_budget(8, 3);
        assert_eq!(split.per_shard, vec![3, 3, 2]);
        assert_eq!(split.concurrent, 3);
        assert_eq!(split.max_live_workers(), 8);

        let split = split_thread_budget(4, 4);
        assert_eq!(split.per_shard, vec![1, 1, 1, 1]);
        assert_eq!(split.max_live_workers(), 4);
    }

    #[test]
    fn split_rations_shards_when_budget_is_short() {
        let split = split_thread_budget(3, 8);
        assert_eq!(split.per_shard, vec![1; 8]);
        assert_eq!(split.concurrent, 3);
        assert_eq!(split.max_live_workers(), 3);
    }

    #[test]
    fn split_never_exceeds_the_budget() {
        for budget in 1..=12 {
            for shards in 1..=12 {
                let split = split_thread_budget(budget, shards);
                assert!(
                    split.max_live_workers() <= budget,
                    "budget {budget} over {shards} shards runs {} workers",
                    split.max_live_workers()
                );
                assert_eq!(split.per_shard.iter().sum::<usize>(), budget.max(shards));
            }
        }
        assert_eq!(split_thread_budget(4, 0).per_shard, Vec::<usize>::new());
    }

    #[test]
    fn merge_is_the_delta_overlay_order_and_dedup_keeps_the_best() {
        let a = [(PointId(4), 1.0), (PointId(9), 2.0)];
        let b = [(PointId(2), 1.0), (PointId(4), 1.0), (PointId(7), 0.5)];
        // Without dedup: ties break by id, duplicates survive.
        let merged = merge_neighbor_lists(&[&a, &b], 4, false);
        assert_eq!(
            merged,
            vec![(PointId(7), 0.5), (PointId(2), 1.0), (PointId(4), 1.0), (PointId(4), 1.0)]
        );
        // With dedup: the duplicate id collapses to one entry.
        let merged = merge_neighbor_lists(&[&a, &b], 4, true);
        assert_eq!(
            merged,
            vec![(PointId(7), 0.5), (PointId(2), 1.0), (PointId(4), 1.0), (PointId(9), 2.0)]
        );
        assert!(merge_neighbor_lists(&[], 3, false).is_empty());
    }
}
