//! Per-query requests: each query in a batch carries its own `k` and
//! optional search knobs instead of inheriting a batch-wide setting.
//!
//! [`EngineRequest`] borrows its query row (`&[f64]`), so a caller holding a
//! dataset — a [`bregman::DenseDataset`], a parsed request body, a memory-
//! mapped file — can submit a batch without cloning every vector into a
//! `Vec<Vec<f64>>` first.

/// Optional per-query search knobs.
///
/// Options are *typed requests*, not hints: a backend that cannot honor a
/// set option rejects the query with
/// [`EngineError::UnsupportedOption`](crate::EngineError::UnsupportedOption)
/// instead of silently ignoring it.
///
/// | option | honored by |
/// |---|---|
/// | `probability` | BrePartition backends (switches the query to the approximate search at that guarantee) |
/// | `candidate_budget` | BB-tree (bounds leaf visits) and VA-file (caps refined candidates) |
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryOptions {
    /// Override the approximation probability guarantee for this query
    /// (`(0, 1]`). On a BrePartition backend the query runs the approximate
    /// search at this guarantee even if the backend serves exact queries by
    /// default.
    pub probability: Option<f64>,
    /// Upper bound on the candidates this query may examine. Best-effort:
    /// the BB-tree rounds the budget up to whole leaves.
    pub candidate_budget: Option<usize>,
}

impl QueryOptions {
    /// No overrides: the backend's configured behavior.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any option is set.
    pub fn is_none(&self) -> bool {
        self.probability.is_none() && self.candidate_budget.is_none()
    }

    /// Request the approximate search at probability guarantee `p`.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = Some(p);
        self
    }

    /// Cap the candidates examined for this query.
    pub fn with_candidate_budget(mut self, budget: usize) -> Self {
        self.candidate_budget = Some(budget);
        self
    }
}

/// One query of a batch: a borrowed row, its own `k`, and per-query options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineRequest<'a> {
    /// The query vector (borrowed; must match the index dimensionality).
    pub query: &'a [f64],
    /// Number of neighbors requested for *this* query.
    pub k: usize,
    /// Per-query search knobs.
    pub options: QueryOptions,
}

impl<'a> EngineRequest<'a> {
    /// A plain request: `k` neighbors of `query`, no option overrides.
    pub fn new(query: &'a [f64], k: usize) -> Self {
        Self { query, k, options: QueryOptions::none() }
    }

    /// Attach options to the request.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder_sets_fields() {
        let opts = QueryOptions::none().with_probability(0.9).with_candidate_budget(128);
        assert_eq!(opts.probability, Some(0.9));
        assert_eq!(opts.candidate_budget, Some(128));
        assert!(!opts.is_none());
        assert!(QueryOptions::none().is_none());
    }

    #[test]
    fn request_borrows_its_row() {
        let row = vec![1.0, 2.0, 3.0];
        let req = EngineRequest::new(&row, 5).with_options(QueryOptions::none());
        assert_eq!(req.query, &row[..]);
        assert_eq!(req.k, 5);
        assert!(req.options.is_none());
    }
}
