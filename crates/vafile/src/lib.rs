//! VA-file (vector approximation file) kNN search for decomposable Bregman
//! divergences — the paper's **VAF** baseline (after Zhang et al., PVLDB
//! 2009, who solve exact Bregman similarity search with standard
//! R-tree/VA-file machinery over an extended space).
//!
//! A VA-file stores, next to the full-resolution data on disk, a compact
//! *approximation* of every point: each dimension is quantized into `2^b`
//! cells by a scalar quantizer trained on the data's per-dimension range.
//! A kNN query proceeds in two phases:
//!
//! 1. **Filter** — the approximation file is scanned sequentially. For every
//!    point, a lower and an upper bound of its divergence from the query are
//!    computed from its cell indices alone (per-dimension convexity of the
//!    scalar divergence makes both bounds cheap, see [`bounds`]). Points
//!    whose lower bound exceeds the running k-th smallest upper bound are
//!    pruned.
//! 2. **Refine** — the surviving candidates are visited in ascending
//!    lower-bound order; their exact coordinates are fetched from the page
//!    store and the exact divergence is evaluated, with the standard VA-file
//!    termination rule (stop when the next lower bound exceeds the current
//!    k-th exact distance).
//!
//! The reported I/O cost is the sequential scan of the approximation file
//! plus the data pages fetched during refinement, matching how the paper
//! accounts for the VAF baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod quantizer;
pub mod search;

pub use bounds::QueryBoundTable;
pub use quantizer::{Quantizer, QuantizerConfig};
pub use search::{VaFile, VaFileConfig, VaQueryResult};
