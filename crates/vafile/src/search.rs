//! The VA-file index: filter on approximations, refine on disk pages.

use std::path::Path;
use std::sync::Arc;

use bregman::kernel::{phi_table, KernelScratch};
use bregman::{DecomposableBregman, DenseDataset, PointId};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError, PersistResult};
use pagestore::{BufferPool, IoStats, PageStore, PageStoreConfig};

use crate::bounds::QueryBoundTable;
use crate::quantizer::{Quantizer, QuantizerConfig};

/// Magic tag of the VA-file metadata artifact.
pub const VAFILE_MAGIC: [u8; 8] = *b"BREPVAF1";

/// Format version this build writes and reads. Version 2 appends the
/// per-point `Φ(x) = Σ_j φ(x_j)` column consumed by the prepared-query
/// refine kernel; version-1 files (no column) are still opened, with the
/// column recomputed from the page file ([`LEGACY_VAFILE_VERSION`]).
pub const VAFILE_VERSION: u32 = 2;

/// The pre-`Φ`-column format version this build can still open (migrating
/// the missing column on the fly).
pub const LEGACY_VAFILE_VERSION: u32 = 1;

/// File name of the VA-file metadata within an index directory.
pub const META_FILE: &str = "vafile.meta";

/// File name of the page file within an index directory.
pub const PAGES_FILE: &str = "pages.bin";

/// Construction parameters of a [`VaFile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaFileConfig {
    /// Quantizer resolution.
    pub quantizer: QuantizerConfig,
    /// Page layout of the full-resolution data.
    pub page_size_bytes: usize,
}

impl Default for VaFileConfig {
    fn default() -> Self {
        Self { quantizer: QuantizerConfig::default(), page_size_bytes: 32 * 1024 }
    }
}

/// Result of one VA-file kNN query.
#[derive(Debug, Clone)]
pub struct VaQueryResult {
    /// Neighbours ordered by increasing divergence.
    pub neighbors: Vec<(PointId, f64)>,
    /// Number of candidates that survived the filter phase.
    pub candidates: usize,
    /// Candidates whose exact divergence was evaluated before termination.
    pub refined: usize,
    /// I/O cost: approximation-file scan pages plus data pages fetched.
    pub io: IoStats,
}

/// A VA-file over a dataset for a fixed decomposable divergence.
///
/// The page store sits behind an `Arc`, so cloning shares the disk image
/// instead of duplicating the dataset.
#[derive(Debug, Clone)]
pub struct VaFile<B: DecomposableBregman> {
    divergence: B,
    quantizer: Quantizer,
    /// One approximation (cell index per dimension) per point.
    approximations: Vec<Vec<u16>>,
    /// Full-resolution data pages.
    store: Arc<PageStore>,
    /// Pages occupied by the (packed) approximation file; scanned on every
    /// query.
    approximation_pages: u64,
    /// Per-point generator sums `Φ(x)`, indexed by point id — the data side
    /// of the prepared-query refine kernel, persisted in [`META_FILE`]
    /// since format version 2.
    phi: Vec<f64>,
}

impl<B: DecomposableBregman> VaFile<B> {
    /// Build a VA-file: train the quantizer, approximate every point and lay
    /// the full-resolution data out sequentially on the simulated disk.
    pub fn build(divergence: B, dataset: &DenseDataset, config: VaFileConfig) -> Self {
        let quantizer = Quantizer::train(config.quantizer, dataset);
        let approximations: Vec<Vec<u16>> =
            dataset.iter().map(|(_, point)| quantizer.approximate(point)).collect();
        let store = PageStore::build_sequential(
            PageStoreConfig::with_page_size(config.page_size_bytes),
            dataset.dim(),
            dataset.len(),
            |pid| dataset.point(PointId(pid)),
        );
        let approx_bytes = quantizer.approximation_bytes_per_point() * dataset.len();
        let approximation_pages = (approx_bytes as u64).div_ceil(config.page_size_bytes as u64);
        let phi = phi_table(&divergence, dataset);
        Self {
            divergence,
            quantizer,
            approximations,
            store: Arc::new(store),
            approximation_pages,
            phi,
        }
    }

    /// Persist the VA-file to a directory: quantizer + approximations +
    /// `Φ` column as [`META_FILE`], the full-resolution pages as
    /// [`PAGES_FILE`].
    pub fn save(&self, dir: &Path) -> PersistResult<()> {
        std::fs::create_dir_all(dir)?;
        let mut w = ByteWriter::new();
        w.put_str(self.divergence.name());
        self.quantizer.write_to(&mut w);
        w.put_u64(self.approximation_pages);
        w.put_usize(self.approximations.len());
        for approx in &self.approximations {
            w.put_u16_seq(approx);
        }
        w.put_f64_seq(&self.phi);
        std::fs::write(dir.join(META_FILE), seal(&VAFILE_MAGIC, VAFILE_VERSION, &w.into_vec()))?;
        self.store.save(&dir.join(PAGES_FILE))
    }

    /// Open a VA-file saved with [`VaFile::save`]. The quantizer and the
    /// approximation table are loaded into memory (they are scanned on every
    /// query anyway); the full-resolution pages are served from the page
    /// file on demand. Fails if the directory was written for a different
    /// divergence.
    ///
    /// Version-1 metadata (written before the `Φ` column existed) is
    /// migrated on open: the column is recomputed with one pass over the
    /// page file. Any other version mismatch is rejected with the usual
    /// descriptive [`PersistError::UnsupportedVersion`].
    pub fn open(divergence: B, dir: &Path) -> PersistResult<Self> {
        let meta = std::fs::read(dir.join(META_FILE))?;
        let (payload, version) = match unseal(&VAFILE_MAGIC, VAFILE_VERSION, &meta) {
            Ok(payload) => (payload, VAFILE_VERSION),
            Err(PersistError::UnsupportedVersion { found: LEGACY_VAFILE_VERSION, .. }) => {
                (unseal(&VAFILE_MAGIC, LEGACY_VAFILE_VERSION, &meta)?, LEGACY_VAFILE_VERSION)
            }
            Err(e) => return Err(e),
        };
        let mut r = ByteReader::new(payload);
        let name = r.take_str()?;
        if name != divergence.name() {
            return Err(PersistError::Corrupt(format!(
                "VA-file was built for divergence {name:?}, opened with {:?}",
                divergence.name()
            )));
        }
        let quantizer = Quantizer::read_from(&mut r)?;
        let approximation_pages = r.take_u64()?;
        let n = r.take_usize()?;
        let cells = quantizer.cells();
        let mut approximations = Vec::with_capacity(n.min(1 << 24));
        for i in 0..n {
            let approx = r.take_u16_seq()?;
            if approx.len() != quantizer.dim() {
                return Err(PersistError::Corrupt(format!(
                    "approximation {i} covers {} dimensions, quantizer is {}-dimensional",
                    approx.len(),
                    quantizer.dim()
                )));
            }
            // A cell index beyond the quantizer's resolution would read out
            // of the per-query bound tables during search.
            if let Some(&cell) = approx.iter().find(|&&c| c as usize >= cells) {
                return Err(PersistError::Corrupt(format!(
                    "approximation {i} holds cell {cell}, quantizer has {cells} cells"
                )));
            }
            approximations.push(approx);
        }
        let persisted_phi = if version >= VAFILE_VERSION { Some(r.take_f64_seq()?) } else { None };
        r.expect_end()?;
        let store = PageStore::open(&dir.join(PAGES_FILE))?;
        if store.point_count() != approximations.len() {
            return Err(PersistError::Corrupt(format!(
                "page file holds {} points, approximation table holds {}",
                store.point_count(),
                approximations.len()
            )));
        }
        if store.dim() != quantizer.dim() {
            return Err(PersistError::Corrupt(format!(
                "page file records are {}-dimensional, quantizer is {}-dimensional",
                store.dim(),
                quantizer.dim()
            )));
        }
        // `approximation_pages` enters every query's I/O count; re-derive it
        // from the quantizer and the page size rather than trusting the
        // persisted value.
        let approx_bytes = quantizer.approximation_bytes_per_point() * approximations.len();
        let expected_pages = (approx_bytes as u64).div_ceil(store.config().page_size_bytes as u64);
        if approximation_pages != expected_pages {
            return Err(PersistError::Corrupt(format!(
                "metadata claims {approximation_pages} approximation pages, \
                 quantizer and page size imply {expected_pages}"
            )));
        }
        let phi = match persisted_phi {
            Some(phi) => {
                if phi.len() != approximations.len() {
                    return Err(PersistError::Corrupt(format!(
                        "Φ column holds {} entries, approximation table holds {}",
                        phi.len(),
                        approximations.len()
                    )));
                }
                phi
            }
            // Version-1 migration: rebuild the column from the page file
            // (one sequential pass; not attributed to any query's I/O).
            None => store.derive_point_column(&mut |coords| divergence.f(coords))?,
        };
        Ok(Self {
            divergence,
            quantizer,
            approximations,
            store: Arc::new(store),
            approximation_pages,
            phi,
        })
    }

    /// The divergence the index was built for.
    pub fn divergence(&self) -> &B {
        &self.divergence
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The full-resolution page store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The full-resolution page store as a shareable handle.
    pub fn store_arc(&self) -> Arc<PageStore> {
        Arc::clone(&self.store)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.approximations.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.approximations.is_empty()
    }

    /// Pages occupied by the approximation file (scanned on every query).
    pub fn approximation_pages(&self) -> u64 {
        self.approximation_pages
    }

    /// The per-point `Φ(x)` column (indexed by point id).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Exact kNN search.
    pub fn knn(&self, pool: &mut BufferPool, query: &[f64], k: usize) -> VaQueryResult {
        self.knn_with_budget(pool, query, k, None)
    }

    /// kNN search with an optional cap on refined candidates.
    ///
    /// With `budget: None` this is the exact search. With `Some(b)` the
    /// refine phase evaluates at most `b` candidates (in ascending
    /// lower-bound order) before terminating, bounding per-query work and
    /// data-page I/O at the cost of exactness.
    pub fn knn_with_budget(
        &self,
        pool: &mut BufferPool,
        query: &[f64],
        k: usize,
        budget: Option<usize>,
    ) -> VaQueryResult {
        let mut kernel = KernelScratch::default();
        self.knn_with_scratch(pool, &mut kernel, query, k, budget)
    }

    /// [`VaFile::knn_with_budget`] reusing the caller's [`KernelScratch`]
    /// (the batch-serving hot path: prepared-query and decode buffers are
    /// reused across a whole batch).
    pub fn knn_with_scratch(
        &self,
        pool: &mut BufferPool,
        kernel: &mut KernelScratch,
        query: &[f64],
        k: usize,
        budget: Option<usize>,
    ) -> VaQueryResult {
        let io_before = pool.stats();
        if k == 0 || self.is_empty() {
            return VaQueryResult {
                neighbors: Vec::new(),
                candidates: 0,
                refined: 0,
                io: IoStats::default(),
            };
        }
        let KernelScratch { prepared, coords, .. } = kernel;
        prepared.decompose_into(&self.divergence, query);
        let table = QueryBoundTable::build(&self.divergence, &self.quantizer, query);

        // Phase 1: scan approximations, tracking the k-th smallest upper
        // bound as the pruning threshold.
        let mut bounds: Vec<(PointId, f64, f64)> = Vec::with_capacity(self.len());
        let mut upper_heap: std::collections::BinaryHeap<OrderedF64> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (i, approx) in self.approximations.iter().enumerate() {
            let (lo, hi) = table.bounds_for(approx);
            bounds.push((PointId(i as u32), lo, hi));
            if upper_heap.len() < k {
                upper_heap.push(OrderedF64(hi));
            } else if hi < upper_heap.peek().map(|v| v.0).unwrap_or(f64::INFINITY) {
                upper_heap.pop();
                upper_heap.push(OrderedF64(hi));
            }
        }
        let threshold = upper_heap.peek().map(|v| v.0).unwrap_or(f64::INFINITY);

        // Candidates: lower bound within the k-th smallest upper bound,
        // arranged as a lazy min-heap rather than fully sorted — heapify is
        // O(c), and only the candidates the termination rule actually
        // refines pay a log. The pop order (ascending lower bound, ties by
        // id) is identical to the full sort it replaces, so the refinement
        // sequence, results and I/O are unchanged while the filter-output
        // size no longer costs O(c log c).
        let mut candidates: std::collections::BinaryHeap<LowerBoundEntry> = bounds
            .into_iter()
            .filter(|(_, lo, _)| *lo <= threshold)
            .map(|(pid, lo, _)| LowerBoundEntry { lower: lo, pid })
            .collect();
        let candidate_count = candidates.len();

        // Phase 2: refine in ascending lower-bound order with the standard
        // VA-file termination rule; exact distances via the prepared
        // kernel over the tabulated Φ column — no transcendentals.
        let mut result: Vec<(PointId, f64)> = Vec::with_capacity(k + 1);
        let mut refined = 0usize;
        while let Some(LowerBoundEntry { lower, pid }) = candidates.pop() {
            if budget.is_some_and(|b| refined >= b) {
                break;
            }
            let kth = if result.len() >= k { result[k - 1].1 } else { f64::INFINITY };
            if lower > kth {
                break;
            }
            if !pool.read_point_into(&self.store, pid.0, coords) {
                continue;
            }
            refined += 1;
            let d = prepared.distance(self.phi[pid.index()], coords);
            let pos = result.partition_point(|(_, existing)| *existing <= d);
            result.insert(pos, (pid, d));
            if result.len() > k {
                result.truncate(k);
            }
        }

        let mut io = pool.stats().since(&io_before);
        io.pages_read += self.approximation_pages;
        VaQueryResult { neighbors: result, candidates: candidate_count, refined, io }
    }

    /// Number of pages occupied by the full-resolution data.
    pub fn data_pages(&self) -> usize {
        self.store.page_count()
    }
}

/// Candidate entry ordered so that `BinaryHeap` (a max-heap) pops the
/// *smallest* lower bound first, ties broken by ascending point id — the
/// same total order as the full sort the lazy heap replaces.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LowerBoundEntry {
    lower: f64,
    pid: PointId,
}

impl Eq for LowerBoundEntry {}
impl PartialOrd for LowerBoundEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LowerBoundEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.lower.total_cmp(&self.lower).then_with(|| other.pid.cmp(&self.pid))
    }
}

/// `f64` wrapper ordered by `total_cmp` for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bregman::{Exponential, ItakuraSaito, SquaredEuclidean};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64, positive: bool) -> DenseDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let range = if positive { 0.2..10.0 } else { -5.0..5.0 };
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(range.clone())).collect()).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    fn brute_force<B: DecomposableBregman>(
        b: &B,
        ds: &DenseDataset,
        query: &[f64],
        k: usize,
    ) -> Vec<(PointId, f64)> {
        let mut all: Vec<(PointId, f64)> =
            ds.iter().map(|(id, p)| (id, b.divergence(p, query))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn check_exactness<B: DecomposableBregman>(b: B, positive: bool, seed: u64) {
        let ds = dataset(300, 6, seed, positive);
        let index = VaFile::build(
            b.clone(),
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 5 }, page_size_bytes: 2048 },
        );
        let mut pool = BufferPool::unbuffered();
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let range = if positive { 0.2..10.0 } else { -5.0..5.0 };
        for _ in 0..5 {
            let query: Vec<f64> = (0..6).map(|_| rng.gen_range(range.clone())).collect();
            let got = index.knn(&mut pool, &query, 8);
            let expected = brute_force(&b, &ds, &query, 8);
            assert_eq!(got.neighbors.len(), 8);
            for (g, e) in got.neighbors.iter().zip(expected.iter()) {
                assert!(
                    (g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()),
                    "distance mismatch {} vs {}",
                    g.1,
                    e.1
                );
            }
        }
    }

    #[test]
    fn exact_for_squared_euclidean() {
        check_exactness(SquaredEuclidean, false, 100);
    }

    #[test]
    fn exact_for_itakura_saito() {
        check_exactness(ItakuraSaito, true, 200);
    }

    #[test]
    fn exact_for_exponential() {
        check_exactness(Exponential, false, 300);
    }

    #[test]
    fn filter_prunes_most_points_with_enough_bits() {
        let ds = dataset(1000, 8, 7, true);
        let index = VaFile::build(
            SquaredEuclidean,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 6 }, page_size_bytes: 4096 },
        );
        let mut pool = BufferPool::unbuffered();
        let query = ds.point(PointId(17)).to_vec();
        let result = index.knn(&mut pool, &query, 10);
        assert!(result.candidates < ds.len(), "filter should prune something");
        assert!(result.refined <= result.candidates);
        assert!(result.io.pages_read >= index.approximation_pages());
    }

    #[test]
    fn io_includes_approximation_scan() {
        let ds = dataset(200, 4, 8, true);
        let index = VaFile::build(SquaredEuclidean, &ds, VaFileConfig::default());
        let mut pool = BufferPool::unbuffered();
        let result = index.knn(&mut pool, &[1.0, 2.0, 3.0, 4.0], 5);
        assert!(result.io.pages_read >= index.approximation_pages());
        assert_eq!(index.data_pages(), index.store().page_count());
    }

    #[test]
    fn k_zero_and_empty_index() {
        let ds = dataset(50, 3, 9, true);
        let index = VaFile::build(SquaredEuclidean, &ds, VaFileConfig::default());
        let mut pool = BufferPool::unbuffered();
        assert!(index.knn(&mut pool, &[1.0, 1.0, 1.0], 0).neighbors.is_empty());

        let empty = DenseDataset::empty(3).unwrap();
        let empty_index = VaFile::build(SquaredEuclidean, &empty, VaFileConfig::default());
        assert!(empty_index.is_empty());
        assert!(empty_index.knn(&mut pool, &[1.0, 1.0, 1.0], 5).neighbors.is_empty());
    }

    #[test]
    fn k_larger_than_dataset_returns_all_points() {
        let ds = dataset(20, 3, 10, true);
        let index = VaFile::build(ItakuraSaito, &ds, VaFileConfig::default());
        let mut pool = BufferPool::unbuffered();
        let result = index.knn(&mut pool, &[1.0, 1.0, 1.0], 50);
        assert_eq!(result.neighbors.len(), 20);
        for pair in result.neighbors.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn save_open_roundtrip_answers_identically_with_identical_io() {
        let ds = dataset(250, 5, 33, true);
        let built = VaFile::build(
            ItakuraSaito,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 5 }, page_size_bytes: 1024 },
        );
        let dir = std::env::temp_dir().join(format!("vafile-test-{}", std::process::id()));
        built.save(&dir).unwrap();
        let reopened = VaFile::open(ItakuraSaito, &dir).unwrap();
        assert_eq!(reopened.store().backend_kind(), "file");
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.approximation_pages(), built.approximation_pages());
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..4 {
            let query: Vec<f64> = (0..5).map(|_| rng.gen_range(0.2..10.0)).collect();
            let mut pool_a = BufferPool::unbuffered();
            let mut pool_b = BufferPool::unbuffered();
            let a = built.knn(&mut pool_a, &query, 6);
            let b = reopened.knn(&mut pool_b, &query, 6);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.candidates, b.candidates);
            assert_eq!(a.refined, b.refined);
            assert_eq!(a.io, b.io, "cold-pool I/O must be identical after reopening");
        }
        // Opening with the wrong divergence is rejected.
        assert!(VaFile::open(SquaredEuclidean, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_one_metadata_is_migrated_on_open() {
        // Re-seal the metadata as a version-1 body (no Φ column): open must
        // rebuild the column from the page file and answer identically.
        let ds = dataset(180, 4, 55, true);
        let built = VaFile::build(
            ItakuraSaito,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 4 }, page_size_bytes: 1024 },
        );
        let dir = std::env::temp_dir().join(format!("vafile-v1-mig-{}", std::process::id()));
        built.save(&dir).unwrap();
        let mut w = ByteWriter::new();
        w.put_str(bregman::Divergence::name(&built.divergence));
        built.quantizer.write_to(&mut w);
        w.put_u64(built.approximation_pages);
        w.put_usize(built.approximations.len());
        for approx in &built.approximations {
            w.put_u16_seq(approx);
        }
        std::fs::write(
            dir.join(META_FILE),
            seal(&VAFILE_MAGIC, LEGACY_VAFILE_VERSION, &w.into_vec()),
        )
        .unwrap();
        let migrated = VaFile::open(ItakuraSaito, &dir).unwrap();
        assert_eq!(migrated.phi().len(), built.phi().len());
        for (a, b) in migrated.phi().iter().zip(built.phi().iter()) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
        let mut pool_a = BufferPool::unbuffered();
        let mut pool_b = BufferPool::unbuffered();
        let query = ds.point(PointId(11)).to_vec();
        let a = built.knn(&mut pool_a, &query, 7);
        let b = migrated.knn(&mut pool_b, &query, 7);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.io, b.io);

        // A version this build has never written is still rejected with the
        // descriptive versioned error.
        let meta = std::fs::read(dir.join(META_FILE)).unwrap();
        let mut bad = meta.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(dir.join(META_FILE), &bad).unwrap();
        match VaFile::open(ItakuraSaito, &dir) {
            Err(PersistError::UnsupportedVersion { found: 99, supported }) => {
                assert_eq!(supported, VAFILE_VERSION);
            }
            other => panic!("expected version rejection, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_page_file_dimensionality_is_rejected() {
        // Two directories with equal point counts but different record
        // dimensionality; swapping the page files must fail at open, not
        // silently truncate refinement distances at query time.
        let root = std::env::temp_dir().join(format!("vafile-swap-test-{}", std::process::id()));
        let a = VaFile::build(ItakuraSaito, &dataset(100, 4, 40, true), VaFileConfig::default());
        let b = VaFile::build(ItakuraSaito, &dataset(100, 6, 41, true), VaFileConfig::default());
        a.save(&root.join("a")).unwrap();
        b.save(&root.join("b")).unwrap();
        std::fs::copy(root.join("b").join(PAGES_FILE), root.join("a").join(PAGES_FILE)).unwrap();
        match VaFile::open(ItakuraSaito, &root.join("a")) {
            Err(PersistError::Corrupt(message)) => {
                assert!(message.contains("dimensional"), "{message}")
            }
            other => panic!("expected dimensionality rejection, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn refinement_budget_caps_examined_candidates() {
        let ds = dataset(400, 5, 12, true);
        let index = VaFile::build(
            SquaredEuclidean,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 3 }, page_size_bytes: 1024 },
        );
        let query = ds.point(PointId(7)).to_vec();
        let mut pool = BufferPool::unbuffered();
        let unbounded = index.knn_with_budget(&mut pool, &query, 10, None);
        let exact = index.knn(&mut pool, &query, 10);
        assert_eq!(unbounded.neighbors, exact.neighbors, "None budget is the exact search");
        let bounded = index.knn_with_budget(&mut pool, &query, 10, Some(5));
        assert!(bounded.refined <= 5, "budget exceeded: refined {}", bounded.refined);
        assert!(bounded.neighbors.len() <= 10);
        // Budgeted data-page I/O never exceeds the exact search's.
        assert!(bounded.io.pages_read <= unbounded.io.pages_read);
    }

    #[test]
    fn coarser_quantizer_yields_more_candidates() {
        let ds = dataset(600, 6, 11, true);
        let fine = VaFile::build(
            SquaredEuclidean,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 7 }, page_size_bytes: 4096 },
        );
        let coarse = VaFile::build(
            SquaredEuclidean,
            &ds,
            VaFileConfig { quantizer: QuantizerConfig { bits_per_dim: 2 }, page_size_bytes: 4096 },
        );
        let query = ds.point(PointId(5)).to_vec();
        let mut pool = BufferPool::unbuffered();
        let fine_result = fine.knn(&mut pool, &query, 10);
        let coarse_result = coarse.knn(&mut pool, &query, 10);
        assert!(
            coarse_result.candidates >= fine_result.candidates,
            "coarse quantizer should produce at least as many candidates ({} vs {})",
            coarse_result.candidates,
            fine_result.candidates
        );
    }
}
