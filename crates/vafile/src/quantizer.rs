//! Per-dimension scalar quantizer used to build vector approximations.

use bregman::DenseDataset;
use pagestore::format::{ByteReader, ByteWriter, PersistError, PersistResult};

/// Configuration of the scalar quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizerConfig {
    /// Bits per dimension; each dimension is divided into `2^bits` cells.
    pub bits_per_dim: u8,
}

impl Default for QuantizerConfig {
    fn default() -> Self {
        Self { bits_per_dim: 6 }
    }
}

impl QuantizerConfig {
    /// Number of cells per dimension.
    pub fn cells(&self) -> usize {
        1usize << self.bits_per_dim.min(16)
    }
}

/// A uniform per-dimension scalar quantizer trained on the data's
/// per-dimension ranges.
#[derive(Debug, Clone)]
pub struct Quantizer {
    config: QuantizerConfig,
    /// Per-dimension lower bound of the data range.
    lo: Vec<f64>,
    /// Per-dimension cell width (zero for constant dimensions).
    width: Vec<f64>,
}

impl Quantizer {
    /// Train the quantizer on a dataset by recording per-dimension bounds.
    pub fn train(config: QuantizerConfig, dataset: &DenseDataset) -> Quantizer {
        let (lo, hi) = dataset
            .bounds()
            .unwrap_or_else(|| (vec![0.0; dataset.dim()], vec![1.0; dataset.dim()]));
        let cells = config.cells() as f64;
        let width = lo
            .iter()
            .zip(hi.iter())
            .map(|(&l, &h)| {
                let span = h - l;
                if span > 0.0 {
                    span / cells
                } else {
                    0.0
                }
            })
            .collect();
        Quantizer { config, lo, width }
    }

    /// The quantizer configuration.
    pub fn config(&self) -> QuantizerConfig {
        self.config
    }

    /// Dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Number of cells per dimension.
    pub fn cells(&self) -> usize {
        self.config.cells()
    }

    /// Cell index of a scalar value in a dimension (clamped to the trained
    /// range, so out-of-range values land in the first or last cell).
    pub fn cell(&self, dim: usize, value: f64) -> u16 {
        let cells = self.cells();
        if self.width[dim] == 0.0 {
            return 0;
        }
        let raw = ((value - self.lo[dim]) / self.width[dim]).floor();
        let clamped = raw.clamp(0.0, (cells - 1) as f64);
        clamped as u16
    }

    /// The `[lo, hi]` interval covered by a cell of a dimension.
    ///
    /// For constant dimensions the interval degenerates to the single trained
    /// value.
    pub fn cell_interval(&self, dim: usize, cell: u16) -> (f64, f64) {
        if self.width[dim] == 0.0 {
            return (self.lo[dim], self.lo[dim]);
        }
        let lo = self.lo[dim] + cell as f64 * self.width[dim];
        let hi = lo + self.width[dim];
        (lo, hi)
    }

    /// Quantize a full point into its approximation (one cell per dimension).
    pub fn approximate(&self, point: &[f64]) -> Vec<u16> {
        debug_assert_eq!(point.len(), self.dim());
        point.iter().enumerate().map(|(d, &v)| self.cell(d, v)).collect()
    }

    /// Size in bytes of one packed approximation record (`bits_per_dim` bits
    /// per dimension, rounded up to whole bytes per record).
    pub fn approximation_bytes_per_point(&self) -> usize {
        (self.dim() * self.config.bits_per_dim as usize).div_ceil(8)
    }

    /// Append the trained quantizer state to a serialization payload.
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.put_u8(self.config.bits_per_dim);
        w.put_f64_seq(&self.lo);
        w.put_f64_seq(&self.width);
    }

    /// Read quantizer state written by [`Quantizer::write_to`].
    pub fn read_from(r: &mut ByteReader<'_>) -> PersistResult<Quantizer> {
        let bits_per_dim = r.take_u8()?;
        if !(1..=16).contains(&bits_per_dim) {
            // An unvalidated resolution would make `cells()` explode the
            // per-query bound tables (dim × 2^bits entries).
            return Err(PersistError::Corrupt(format!(
                "quantizer resolution of {bits_per_dim} bits per dimension is outside 1..=16"
            )));
        }
        let lo = r.take_f64_seq()?;
        let width = r.take_f64_seq()?;
        if lo.len() != width.len() {
            return Err(PersistError::Corrupt(format!(
                "quantizer bounds cover {} dimensions, widths cover {}",
                lo.len(),
                width.len()
            )));
        }
        Ok(Quantizer { config: QuantizerConfig { bits_per_dim }, lo, width })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> DenseDataset {
        DenseDataset::from_rows(&[
            vec![0.0, 10.0, 5.0],
            vec![1.0, 20.0, 5.0],
            vec![2.0, 30.0, 5.0],
            vec![4.0, 40.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn cells_cover_the_training_range() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 2 }, &dataset());
        assert_eq!(q.cells(), 4);
        assert_eq!(q.dim(), 3);
        // Dimension 0 spans [0,4]; width 1.
        assert_eq!(q.cell(0, 0.0), 0);
        assert_eq!(q.cell(0, 0.99), 0);
        assert_eq!(q.cell(0, 1.5), 1);
        assert_eq!(q.cell(0, 3.99), 3);
        // The max value maps to the last cell.
        assert_eq!(q.cell(0, 4.0), 3);
        // Out-of-range values are clamped.
        assert_eq!(q.cell(0, -5.0), 0);
        assert_eq!(q.cell(0, 100.0), 3);
    }

    #[test]
    fn value_lies_inside_its_cell_interval() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 3 }, &dataset());
        for &value in &[0.0, 0.7, 1.2, 2.9, 3.999, 4.0] {
            let cell = q.cell(0, value);
            let (lo, hi) = q.cell_interval(0, cell);
            assert!(lo <= value + 1e-12 && value <= hi + 1e-12, "{value} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn constant_dimension_degenerates_gracefully() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 4 }, &dataset());
        assert_eq!(q.cell(2, 5.0), 0);
        assert_eq!(q.cell(2, 123.0), 0);
        let (lo, hi) = q.cell_interval(2, 0);
        assert_eq!(lo, 5.0);
        assert_eq!(hi, 5.0);
    }

    #[test]
    fn approximate_produces_one_cell_per_dimension() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 2 }, &dataset());
        let approx = q.approximate(&[4.0, 10.0, 5.0]);
        assert_eq!(approx.len(), 3);
        assert_eq!(approx[0], 3);
        assert_eq!(approx[1], 0);
    }

    #[test]
    fn approximation_record_size_rounds_up_to_bytes() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 6 }, &dataset());
        // 3 dims * 6 bits = 18 bits → 3 bytes.
        assert_eq!(q.approximation_bytes_per_point(), 3);
        let q8 = Quantizer::train(QuantizerConfig { bits_per_dim: 8 }, &dataset());
        assert_eq!(q8.approximation_bytes_per_point(), 3);
    }

    #[test]
    fn serialization_roundtrips_and_rejects_bad_resolutions() {
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 5 }, &dataset());
        let mut w = ByteWriter::new();
        q.write_to(&mut w);
        let bytes = w.into_vec();
        let restored = Quantizer::read_from(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(restored.config(), q.config());
        assert_eq!(restored.dim(), q.dim());
        for &value in &[0.0, 1.7, 3.2, 25.0] {
            assert_eq!(restored.cell(0, value), q.cell(0, value));
        }

        // Resolutions outside 1..=16 bits would explode the per-query bound
        // tables; they must be rejected at decode time.
        for bad_bits in [0u8, 17, 255] {
            let mut w = ByteWriter::new();
            w.put_u8(bad_bits);
            w.put_f64_seq(&[0.0]);
            w.put_f64_seq(&[1.0]);
            let bytes = w.into_vec();
            assert!(
                matches!(
                    Quantizer::read_from(&mut ByteReader::new(&bytes)),
                    Err(PersistError::Corrupt(_))
                ),
                "bits_per_dim = {bad_bits} must be rejected"
            );
        }
    }

    #[test]
    fn empty_dataset_uses_unit_range() {
        let empty = DenseDataset::empty(2).unwrap();
        let q = Quantizer::train(QuantizerConfig { bits_per_dim: 2 }, &empty);
        assert_eq!(q.cell(0, 0.5), 2);
        assert_eq!(q.cell(1, -3.0), 0);
    }
}
