//! Per-cell divergence bounds for a fixed query.
//!
//! For a decomposable divergence the per-dimension term
//! `d_φ(x, y) = φ(x) − φ(y) − φ'(y)(x − y)` is convex in `x` with its minimum
//! at `x = y`. Over a quantizer cell `[lo, hi]` this gives closed-form
//! bounds:
//!
//! * lower bound: `d_φ(clamp(y, lo, hi), y)` (zero when `y` falls inside the
//!   cell),
//! * upper bound: `max(d_φ(lo, y), d_φ(hi, y))` (convexity puts the maximum
//!   at an endpoint).
//!
//! [`QueryBoundTable`] materializes both bounds for every `(dimension,
//! cell)` pair once per query, so scanning the approximation file costs two
//! table lookups and two additions per dimension per point.

use bregman::DecomposableBregman;

use crate::quantizer::Quantizer;

/// Per-(dimension, cell) lower and upper divergence bounds for one query.
#[derive(Debug, Clone)]
pub struct QueryBoundTable {
    cells: usize,
    dim: usize,
    /// `lower[d * cells + c]`: lower bound of the dimension-`d` term when the
    /// point's coordinate lies in cell `c`.
    lower: Vec<f64>,
    /// Upper bound counterpart.
    upper: Vec<f64>,
}

impl QueryBoundTable {
    /// Build the table for `query` under `divergence`.
    ///
    /// Cell intervals whose endpoints fall outside the divergence domain
    /// (e.g. a zero left edge under Itakura-Saito when the data is strictly
    /// positive) are nudged to the nearest in-domain value before the bound
    /// is evaluated.
    pub fn build<B: DecomposableBregman>(
        divergence: &B,
        quantizer: &Quantizer,
        query: &[f64],
    ) -> QueryBoundTable {
        let dim = quantizer.dim();
        debug_assert_eq!(query.len(), dim);
        let cells = quantizer.cells();
        let mut lower = vec![0.0; dim * cells];
        let mut upper = vec![0.0; dim * cells];
        for d in 0..dim {
            let y = query[d];
            for c in 0..cells {
                let (mut lo, mut hi) = quantizer.cell_interval(d, c as u16);
                if !divergence.in_domain(lo) {
                    lo = nudge_into_domain(divergence, lo, hi);
                }
                if !divergence.in_domain(hi) {
                    hi = nudge_into_domain(divergence, hi, lo);
                }
                let closest = y.clamp(lo, hi);
                let lower_bound =
                    if closest == y { 0.0 } else { divergence.scalar_divergence(closest, y) };
                let upper_bound =
                    divergence.scalar_divergence(lo, y).max(divergence.scalar_divergence(hi, y));
                lower[d * cells + c] = lower_bound.max(0.0);
                upper[d * cells + c] = upper_bound.max(lower[d * cells + c]);
            }
        }
        QueryBoundTable { cells, dim, lower, upper }
    }

    /// Dimensionality of the table.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Accumulate the lower and upper divergence bounds of a full
    /// approximation (one cell per dimension).
    pub fn bounds_for(&self, approximation: &[u16]) -> (f64, f64) {
        debug_assert_eq!(approximation.len(), self.dim);
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (d, &cell) in approximation.iter().enumerate() {
            let idx = d * self.cells + cell as usize;
            lo += self.lower[idx];
            hi += self.upper[idx];
        }
        (lo, hi)
    }
}

/// Move a value that violates the generator domain toward `other` until it is
/// valid, falling back to the divergence's domain anchor.
fn nudge_into_domain<B: DecomposableBregman>(divergence: &B, value: f64, other: f64) -> f64 {
    if divergence.in_domain(other) {
        // Use a point just inside the interval on the side of `other`.
        let candidate = value + (other - value) * 1e-6;
        if divergence.in_domain(candidate) {
            return candidate;
        }
        return other;
    }
    divergence.domain_anchor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::QuantizerConfig;
    use bregman::{DenseDataset, Exponential, ItakuraSaito, SquaredEuclidean};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64, positive: bool) -> DenseDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let range = if positive { 0.2..10.0 } else { -5.0..5.0 };
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..d).map(|_| rng.gen_range(range.clone())).collect()).collect();
        DenseDataset::from_rows(&rows).unwrap()
    }

    fn check_bounds_sandwich<B: DecomposableBregman>(b: &B, positive: bool, seed: u64) {
        let ds = dataset(120, 5, seed, positive);
        let quantizer = Quantizer::train(QuantizerConfig { bits_per_dim: 4 }, &ds);
        let query: Vec<f64> = ds.point(bregman::PointId(3)).to_vec();
        let table = QueryBoundTable::build(b, &quantizer, &query);
        for (_, point) in ds.iter() {
            let approx = quantizer.approximate(point);
            let (lo, hi) = table.bounds_for(&approx);
            let exact = b.divergence(point, &query);
            assert!(
                lo <= exact + 1e-7 * (1.0 + exact.abs()),
                "{}: lower bound {lo} exceeds exact {exact}",
                b.name()
            );
            assert!(
                hi + 1e-7 * (1.0 + hi.abs()) >= exact,
                "{}: upper bound {hi} below exact {exact}",
                b.name()
            );
        }
    }

    #[test]
    fn bounds_sandwich_exact_divergence_squared_euclidean() {
        check_bounds_sandwich(&SquaredEuclidean, false, 1);
    }

    #[test]
    fn bounds_sandwich_exact_divergence_itakura_saito() {
        check_bounds_sandwich(&ItakuraSaito, true, 2);
    }

    #[test]
    fn bounds_sandwich_exact_divergence_exponential() {
        check_bounds_sandwich(&Exponential, false, 3);
    }

    #[test]
    fn query_inside_cell_gives_zero_lower_bound() {
        let ds = dataset(50, 3, 9, true);
        let quantizer = Quantizer::train(QuantizerConfig { bits_per_dim: 3 }, &ds);
        let query = ds.point(bregman::PointId(0)).to_vec();
        let table = QueryBoundTable::build(&SquaredEuclidean, &quantizer, &query);
        let approx = quantizer.approximate(&query);
        let (lo, _) = table.bounds_for(&approx);
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn bounds_are_ordered() {
        let ds = dataset(80, 4, 11, true);
        let quantizer = Quantizer::train(QuantizerConfig { bits_per_dim: 5 }, &ds);
        let query = vec![1.0, 2.0, 3.0, 4.0];
        let table = QueryBoundTable::build(&ItakuraSaito, &quantizer, &query);
        for (_, point) in ds.iter() {
            let approx = quantizer.approximate(point);
            let (lo, hi) = table.bounds_for(&approx);
            assert!(lo <= hi);
            assert!(lo >= 0.0);
        }
    }
}
