//! Open-loop arrival schedules.
//!
//! An open-loop load generator decides *when* each operation should start
//! before the run begins, from a target rate alone — the schedule never
//! reacts to how fast the system answers. When the system falls behind,
//! intended arrival times keep marching and the backlog shows up as
//! latency, which is exactly the coordinated-omission-free measurement a
//! closed loop (issue next op after the previous completes) cannot give.
//!
//! Schedules are plain vectors of nanosecond offsets from the run start,
//! precomputed so the dispatch threads do no arithmetic — and so the same
//! seed reproduces the same schedule bit-for-bit.

use crate::rng::SplitMix64;

/// Intended arrival times for one run, as nanosecond offsets from start.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    offsets_ns: Vec<u64>,
    target_qps: f64,
}

impl Schedule {
    /// A Poisson process at `target_qps`: independent exponential
    /// inter-arrival gaps with mean `1/target_qps`, drawn by inverse-CDF
    /// from a [`SplitMix64`] stream. Equal `(seed, target_qps, count)`
    /// reproduce the schedule bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is not strictly positive and finite.
    pub fn poisson(seed: u64, target_qps: f64, count: usize) -> Schedule {
        assert!(
            target_qps.is_finite() && target_qps > 0.0,
            "target_qps must be positive and finite, got {target_qps}"
        );
        let mut rng = SplitMix64::new(seed);
        let mut offsets_ns = Vec::with_capacity(count);
        let mut t_seconds = 0.0f64;
        for _ in 0..count {
            // Inverse CDF of Exp(rate): -ln(1-u)/rate. `next_f64` is in
            // [0, 1), so `1 - u` is in (0, 1] and the log is finite.
            let u = rng.next_f64();
            t_seconds += -(1.0 - u).ln() / target_qps;
            offsets_ns.push((t_seconds * 1e9).round() as u64);
        }
        Schedule { offsets_ns, target_qps }
    }

    /// A uniform (fixed-gap) schedule at `target_qps`: arrival `i` at
    /// `i / target_qps` seconds. Deterministic by construction.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is not strictly positive and finite.
    pub fn uniform(target_qps: f64, count: usize) -> Schedule {
        assert!(
            target_qps.is_finite() && target_qps > 0.0,
            "target_qps must be positive and finite, got {target_qps}"
        );
        let gap_ns = 1e9 / target_qps;
        let offsets_ns = (0..count).map(|i| (i as f64 * gap_ns).round() as u64).collect();
        Schedule { offsets_ns, target_qps }
    }

    /// The intended arrival offsets, ascending, in nanoseconds from start.
    pub fn offsets_ns(&self) -> &[u64] {
        &self.offsets_ns
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets_ns.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets_ns.is_empty()
    }

    /// The rate this schedule was built for.
    pub fn target_qps(&self) -> f64 {
        self.target_qps
    }

    /// Offset of the last intended arrival (0 for an empty schedule).
    pub fn span_ns(&self) -> u64 {
        self.offsets_ns.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_bit_identical_under_fixed_seed() {
        let a = Schedule::poisson(99, 5_000.0, 4_096);
        let b = Schedule::poisson(99, 5_000.0, 4_096);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_seeds_decorrelate() {
        let a = Schedule::poisson(1, 5_000.0, 256);
        let b = Schedule::poisson(2, 5_000.0, 256);
        assert_ne!(a.offsets_ns(), b.offsets_ns());
    }

    #[test]
    fn poisson_mean_gap_matches_target_rate() {
        let qps = 10_000.0;
        let n = 100_000;
        let s = Schedule::poisson(7, qps, n);
        // Mean inter-arrival of Exp(qps) is 1/qps; the sample mean of 100k
        // gaps concentrates well within 5%.
        let mean_gap_ns = s.span_ns() as f64 / (n - 1) as f64;
        let expected_ns = 1e9 / qps;
        assert!(
            (mean_gap_ns - expected_ns).abs() < 0.05 * expected_ns,
            "mean gap {mean_gap_ns}ns vs expected {expected_ns}ns"
        );
    }

    #[test]
    fn poisson_offsets_are_nondecreasing() {
        let s = Schedule::poisson(3, 50_000.0, 10_000);
        for pair in s.offsets_ns().windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn uniform_schedule_has_fixed_gaps() {
        let s = Schedule::uniform(1_000.0, 5);
        assert_eq!(s.offsets_ns(), &[0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]);
        assert_eq!(s.span_ns(), 4_000_000);
    }

    #[test]
    fn empty_schedule_is_benign() {
        let s = Schedule::uniform(1_000.0, 0);
        assert!(s.is_empty());
        assert_eq!(s.span_ns(), 0);
    }
}
