//! The mixed operation stream: which request each arrival carries.
//!
//! The stream is generated up front from a seed and a weight mix, so a
//! serving run is reproducible end to end: the *i*-th arrival always
//! carries the same operation. Deletes carry a raw pick value rather than
//! a concrete id — which id dies is only decidable at execution time,
//! against the live set as it stands (see the runner), so the stream stays
//! independent of execution interleaving.

use crate::rng::SplitMix64;

/// One operation in a serving stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Run query `query_index` from the run's query pool.
    Query {
        /// Index into the query pool.
        query_index: usize,
    },
    /// Insert row `row_index` from the run's insert pool.
    Insert {
        /// Index into the insert pool; assigned sequentially so every
        /// insert carries a distinct row.
        row_index: usize,
    },
    /// Delete a live point, picked at execution time as
    /// `pick mod live_count`.
    Delete {
        /// Raw 64-bit draw the runner reduces against the live set.
        pick: u64,
    },
}

/// Relative operation weights for a serving stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Relative weight of queries.
    pub query: u32,
    /// Relative weight of inserts.
    pub insert: u32,
    /// Relative weight of deletes.
    pub delete: u32,
}

impl OpMix {
    /// A mix with the given `query:insert:delete` weights.
    pub fn new(query: u32, insert: u32, delete: u32) -> OpMix {
        OpMix { query, insert, delete }
    }

    /// A read-only mix.
    pub fn query_only() -> OpMix {
        OpMix { query: 1, insert: 0, delete: 0 }
    }

    /// Sum of the weights.
    pub fn total(&self) -> u32 {
        self.query + self.insert + self.delete
    }
}

/// Generate `count` operations under `mix`, drawing query indexes
/// uniformly from `[0, query_pool)`. Equal `(seed, mix, count,
/// query_pool)` reproduce the stream bit-for-bit.
///
/// # Panics
///
/// Panics if every weight is zero, or if queries have weight but the
/// query pool is empty.
pub fn operation_stream(seed: u64, mix: OpMix, count: usize, query_pool: usize) -> Vec<Operation> {
    let total = mix.total();
    assert!(total > 0, "operation mix must have at least one non-zero weight");
    assert!(
        mix.query == 0 || query_pool > 0,
        "query weight is non-zero but the query pool is empty"
    );
    let mut rng = SplitMix64::new(seed);
    let mut next_insert_row = 0usize;
    (0..count)
        .map(|_| {
            let draw = rng.next_below(u64::from(total)) as u32;
            if draw < mix.query {
                Operation::Query { query_index: rng.next_below(query_pool as u64) as usize }
            } else if draw < mix.query + mix.insert {
                let row_index = next_insert_row;
                next_insert_row += 1;
                Operation::Insert { row_index }
            } else {
                Operation::Delete { pick: rng.next_u64() }
            }
        })
        .collect()
}

/// How many inserts a stream contains (the insert pool must hold at least
/// this many rows).
pub fn insert_count(ops: &[Operation]) -> usize {
    ops.iter().filter(|op| matches!(op, Operation::Insert { .. })).count()
}

/// How many deletes a stream contains (an upper bound on how many base
/// points a run can tombstone — what sizes the recall oracle's base
/// neighbor lists).
pub fn delete_count(ops: &[Operation]) -> usize {
    ops.iter().filter(|op| matches!(op, Operation::Delete { .. })).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_bit_identical_under_fixed_seed() {
        let a = operation_stream(31, OpMix::new(90, 7, 3), 8_192, 1_000);
        let b = operation_stream(31, OpMix::new(90, 7, 3), 8_192, 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_seeds_decorrelate() {
        let a = operation_stream(1, OpMix::new(1, 1, 1), 512, 10);
        let b = operation_stream(2, OpMix::new(1, 1, 1), 512, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_ratios_are_respected() {
        let mix = OpMix::new(80, 15, 5);
        let n = 100_000;
        let ops = operation_stream(5, mix, n, 64);
        let inserts = insert_count(&ops);
        let deletes = delete_count(&ops);
        let queries = n - inserts - deletes;
        let expect = |w: u32| n as f64 * f64::from(w) / f64::from(mix.total());
        assert!((queries as f64 - expect(80)).abs() < 0.02 * n as f64);
        assert!((inserts as f64 - expect(15)).abs() < 0.02 * n as f64);
        assert!((deletes as f64 - expect(5)).abs() < 0.02 * n as f64);
    }

    #[test]
    fn insert_rows_are_sequential_and_distinct() {
        let ops = operation_stream(9, OpMix::new(1, 1, 0), 2_000, 8);
        let rows: Vec<usize> = ops
            .iter()
            .filter_map(|op| match op {
                Operation::Insert { row_index } => Some(*row_index),
                _ => None,
            })
            .collect();
        assert_eq!(rows, (0..rows.len()).collect::<Vec<_>>());
    }

    #[test]
    fn query_only_mix_never_mutates() {
        let ops = operation_stream(13, OpMix::query_only(), 1_024, 16);
        assert_eq!(insert_count(&ops), 0);
        assert_eq!(delete_count(&ops), 0);
        for op in &ops {
            match op {
                Operation::Query { query_index } => assert!(*query_index < 16),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
