//! Deterministic open-loop load generation for serving benchmarks.
//!
//! A serving benchmark answers a different question than a batch
//! benchmark: not "how fast can the engine drain N queries" but "what
//! latency does a client see when requests arrive at a fixed rate the
//! system does not control". This crate generates that load:
//!
//! * [`Schedule`] — seeded Poisson or uniform arrival times at a target
//!   QPS, precomputed as nanosecond offsets, bit-identical under a fixed
//!   seed.
//! * [`OpMix`]/[`operation_stream`] — a deterministic mixed stream of
//!   queries, inserts and deletes to drive an online-mutable index.
//! * [`run_open_loop`] — dispatch threads that start each operation at
//!   its *intended* arrival time and measure latency from that intent, so
//!   queueing delay behind a slow server is measured instead of silently
//!   stretching the schedule (the coordinated-omission correction).
//! * [`oracle`] — exact ground truth per sampled query, reconstructed at
//!   the mutation-log version the query executed under, for recall
//!   columns on approximate methods.
//!
//! The crate is dependency-free (its PRNG is a local SplitMix64) and
//! index-agnostic: anything implementing [`ServeTarget`] can be driven.
//!
//! ```
//! use loadgen::{operation_stream, OpMix, Schedule};
//!
//! let schedule = Schedule::poisson(42, 1_000.0, 512);
//! let ops = operation_stream(42, OpMix::new(90, 7, 3), 512, 64);
//! assert_eq!(schedule.len(), ops.len());
//! // Same seed, same schedule — reproducible down to the nanosecond.
//! assert_eq!(schedule, Schedule::poisson(42, 1_000.0, 512));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ops;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod schedule;

pub use ops::{delete_count, insert_count, operation_stream, OpMix, Operation};
pub use rng::SplitMix64;
pub use runner::{
    run_open_loop, run_open_loop_concurrent, AvailabilityCounters, ConcurrentServeTarget, Mutation,
    OpKind, OpRecord, RecallSample, RunOutcome, RunnerConfig, ServeTarget,
};
pub use schedule::Schedule;
