//! The harness PRNG: SplitMix64.
//!
//! The load generator's determinism contract — bit-identical arrival
//! schedules and operation streams under a fixed seed, on every platform,
//! forever — is easiest to keep with a generator whose entire algorithm
//! fits in a dozen lines of this crate. SplitMix64 (Steele, Lea & Flood's
//! `splitmix64` finalizer) passes BigCrush, needs one `u64` of state, and
//! has no configuration knobs that could drift.

/// A 64-bit SplitMix generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[0, bound)` via the widening-multiply range
    /// reduction (no modulo bias worth speaking of at bench sample sizes).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a non-empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector_from_reference_implementation() {
        // First three outputs of splitmix64 seeded with 1234567, from the
        // public-domain reference implementation.
        let mut rng = SplitMix64::new(1_234_567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
        assert_eq!(rng.next_u64(), 9_817_491_932_198_370_423);
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(11);
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.next_below(13);
            assert!(v < 13);
            seen_high |= v == 12;
        }
        assert!(seen_high, "upper values should be reachable");
    }
}
