//! The open-loop dispatcher.
//!
//! Dispatch threads pull operations off a shared cursor, *wait until each
//! operation's intended arrival time*, execute it against the target, and
//! record latency **from the intended arrival** — not from when the
//! operation actually started. When the target cannot keep up, arrivals
//! queue behind the slow operations and that queueing delay lands in the
//! recorded latencies; a closed-loop harness (next op after the previous
//! answer) would silently stretch the schedule instead and hide the
//! backlog. This is the standard coordinated-omission correction.
//!
//! Queries run under a shared read lock (concurrent with each other);
//! inserts and deletes take the write lock, apply the mutation, and append
//! it to a mutation log. The log length is the run's *version*: a sampled
//! query records the version it executed under, which lets the recall
//! oracle reconstruct the exact ground truth that query should have seen
//! regardless of how threads interleaved.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::ops::Operation;
use crate::schedule::Schedule;

/// A serving target the harness can drive: point queries plus online
/// mutations. Implementations decide their own scratch/caching policy per
/// call.
pub trait ServeTarget {
    /// Ids of the `k` nearest neighbors of `query`, best first.
    fn query(&self, query: &[f64], k: usize) -> Vec<u64>;
    /// Insert `row`, returning its assigned id.
    fn insert(&mut self, row: &[f64]) -> u64;
    /// Delete `id`; `false` if it was not live.
    fn delete(&mut self, id: u64) -> bool;
    /// Cumulative fault-tolerance counters, for targets that can answer
    /// with reduced coverage instead of failing (a sharded tier with a
    /// circuit breaker). The runner snapshots this before and after a run
    /// and reports the delta; plain single-index targets keep the default
    /// all-zero implementation.
    fn availability(&self) -> AvailabilityCounters {
        AvailabilityCounters::default()
    }
}

/// A serving target whose mutations are internally synchronized: queries,
/// inserts and deletes all take `&self`, and the target guarantees that a
/// mutation never blocks a concurrent query (an LSM-style index with
/// interior mutability and epoch-handoff compaction, say).
///
/// Driven by [`run_open_loop_concurrent`], where the harness holds **no
/// lock at all** around unsampled queries — the latency distribution
/// measures the target's own concurrency, not the harness's. Compare
/// [`ServeTarget`], whose `&mut` mutators force the harness to serialize
/// every mutation against every query behind an `RwLock`.
pub trait ConcurrentServeTarget {
    /// Ids of the `k` nearest neighbors of `query`, best first.
    fn query(&self, query: &[f64], k: usize) -> Vec<u64>;
    /// Insert `row`, returning its assigned id.
    fn insert(&self, row: &[f64]) -> u64;
    /// Delete `id`; `false` if it was not live.
    fn delete(&self, id: u64) -> bool;
    /// Cumulative fault-tolerance counters; see
    /// [`ServeTarget::availability`].
    fn availability(&self) -> AvailabilityCounters {
        AvailabilityCounters::default()
    }
}

/// Fault-tolerance counters a [`ServeTarget`] may expose: how many queries
/// were answered degraded (reduced shard coverage), how many per-shard
/// retries were dispatched, and how often a circuit breaker opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvailabilityCounters {
    /// Queries answered with fewer shards than configured.
    pub degraded_queries: u64,
    /// Per-shard retry dispatches.
    pub shard_retries: u64,
    /// Closed-to-open circuit-breaker transitions.
    pub breaker_opens: u64,
}

impl AvailabilityCounters {
    /// The counter movement since `before` (saturating, so a reset target
    /// reads as zero movement instead of wrapping).
    pub fn since(&self, before: &AvailabilityCounters) -> AvailabilityCounters {
        AvailabilityCounters {
            degraded_queries: self.degraded_queries.saturating_sub(before.degraded_queries),
            shard_retries: self.shard_retries.saturating_sub(before.shard_retries),
            breaker_opens: self.breaker_opens.saturating_sub(before.breaker_opens),
        }
    }
}

/// What kind of operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A kNN query.
    Query,
    /// An insert.
    Insert,
    /// A delete (including ones skipped against an empty live set).
    Delete,
}

/// One completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Position in the operation stream.
    pub op_index: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Intended arrival, nanoseconds from run start.
    pub intended_ns: u64,
    /// Completion minus intended arrival, in nanoseconds — includes any
    /// queueing delay behind the schedule.
    pub latency_ns: u64,
}

/// A mutation as actually applied, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Row `row_index` of the insert pool became live as `id`.
    Insert {
        /// Assigned external id.
        id: u64,
        /// Row in the insert pool.
        row_index: usize,
    },
    /// `id` was deleted.
    Delete {
        /// The deleted external id.
        id: u64,
    },
}

/// A sampled query answer, for the recall oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecallSample {
    /// Position in the operation stream.
    pub op_index: usize,
    /// Which pool query ran.
    pub query_index: usize,
    /// Mutation-log length when the query executed — the ground truth is
    /// the state after exactly this many mutations.
    pub version: usize,
    /// Ids the target answered, best first.
    pub answer: Vec<u64>,
}

/// Knobs for one open-loop run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Neighbors per query.
    pub k: usize,
    /// Dispatch threads pulling from the schedule.
    pub dispatch_threads: usize,
    /// Leading operations executed but excluded from records and samples
    /// (JIT-style warmup: first-touch page faults, cold caches).
    pub warmup_ops: usize,
    /// Record every `sample_every`-th stream position's query for the
    /// recall oracle; `0` disables sampling.
    pub sample_every: usize,
    /// Ids live before the run starts (typically the base dataset's ids),
    /// eligible for deletion alongside inserted rows.
    pub initial_live: Vec<u64>,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            k: 10,
            dispatch_threads: 1,
            warmup_ops: 0,
            sample_every: 0,
            initial_live: Vec::new(),
        }
    }
}

/// Everything one open-loop run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Post-warmup records, in stream order.
    pub records: Vec<OpRecord>,
    /// Post-warmup sampled query answers, in stream order.
    pub samples: Vec<RecallSample>,
    /// Every applied mutation, in application order (warmup included —
    /// versions index into this log).
    pub log: Vec<Mutation>,
    /// First post-warmup intended arrival to last post-warmup completion,
    /// in nanoseconds (0 when nothing was recorded).
    pub wall_ns: u64,
    /// Deletes that found an empty live set and were skipped.
    pub skipped_deletes: usize,
    /// Fault-tolerance counter movement across this run (warmup included),
    /// from [`ServeTarget::availability`]. All zero for targets without
    /// degraded serving.
    pub availability: AvailabilityCounters,
}

impl RunOutcome {
    /// Completed post-warmup operations per second, measured over
    /// [`RunOutcome::wall_ns`].
    pub fn achieved_qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.records.len() as f64 / (self.wall_ns as f64 / 1e9)
    }
}

struct ServeState<T> {
    target: T,
    live: Vec<u64>,
    log: Vec<Mutation>,
    skipped_deletes: usize,
}

/// Sleep-until with a spin tail: coarse `thread::sleep` until ~200µs out,
/// then yield-spin to the intended instant so dispatch jitter stays well
/// under typical query latencies.
fn wait_until(start: Instant, intended_ns: u64) {
    const SPIN_WINDOW_NS: u64 = 200_000;
    loop {
        let elapsed = start.elapsed().as_nanos() as u64;
        if elapsed >= intended_ns {
            return;
        }
        let remain = intended_ns - elapsed;
        if remain > SPIN_WINDOW_NS {
            std::thread::sleep(Duration::from_nanos(remain - SPIN_WINDOW_NS));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Drive `target` with `ops` at the arrival times of `schedule`.
///
/// Returns the target (for post-run inspection) and the run's records,
/// samples and mutation log. Operations execute even when the run is
/// behind schedule — late operations start immediately and their lateness
/// is part of their recorded latency.
///
/// # Panics
///
/// Panics if `ops` and `schedule` disagree on length, if
/// `dispatch_threads` is zero, or if an insert's `row_index` exceeds the
/// insert pool.
pub fn run_open_loop<T: ServeTarget + Send + Sync>(
    target: T,
    queries: &[Vec<f64>],
    insert_rows: &[Vec<f64>],
    schedule: &Schedule,
    ops: &[Operation],
    config: &RunnerConfig,
) -> (T, RunOutcome) {
    assert_eq!(ops.len(), schedule.len(), "operation stream and schedule must have equal length");
    assert!(config.dispatch_threads > 0, "at least one dispatch thread is required");

    let availability_before = target.availability();
    let state = RwLock::new(ServeState {
        target,
        live: config.initial_live.clone(),
        log: Vec::new(),
        skipped_deletes: 0,
    });
    let cursor = AtomicUsize::new(0);
    let offsets = schedule.offsets_ns();

    let mut per_thread: Vec<(Vec<OpRecord>, Vec<RecallSample>)> = std::thread::scope(|scope| {
        let start = Instant::now();
        let handles: Vec<_> = (0..config.dispatch_threads)
            .map(|_| {
                let state = &state;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut records = Vec::new();
                    let mut samples = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ops.len() {
                            break;
                        }
                        let intended_ns = offsets[i];
                        wait_until(start, intended_ns);
                        let warm = i < config.warmup_ops;
                        let kind = match ops[i] {
                            Operation::Query { query_index } => {
                                let guard = state.read().unwrap_or_else(|e| e.into_inner());
                                let version = guard.log.len();
                                let answer = guard.target.query(&queries[query_index], config.k);
                                drop(guard);
                                let sampled = !warm
                                    && config.sample_every > 0
                                    && i.is_multiple_of(config.sample_every);
                                if sampled {
                                    samples.push(RecallSample {
                                        op_index: i,
                                        query_index,
                                        version,
                                        answer,
                                    });
                                }
                                OpKind::Query
                            }
                            Operation::Insert { row_index } => {
                                let mut guard = state.write().unwrap_or_else(|e| e.into_inner());
                                let id = guard.target.insert(&insert_rows[row_index]);
                                guard.live.push(id);
                                guard.log.push(Mutation::Insert { id, row_index });
                                OpKind::Insert
                            }
                            Operation::Delete { pick } => {
                                let mut guard = state.write().unwrap_or_else(|e| e.into_inner());
                                if guard.live.is_empty() {
                                    guard.skipped_deletes += 1;
                                } else {
                                    let slot = (pick % guard.live.len() as u64) as usize;
                                    let id = guard.live.swap_remove(slot);
                                    guard.target.delete(id);
                                    guard.log.push(Mutation::Delete { id });
                                }
                                OpKind::Delete
                            }
                        };
                        if !warm {
                            let done_ns = start.elapsed().as_nanos() as u64;
                            records.push(OpRecord {
                                op_index: i,
                                kind,
                                intended_ns,
                                latency_ns: done_ns.saturating_sub(intended_ns),
                            });
                        }
                    }
                    (records, samples)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("dispatch thread panicked")).collect()
    });

    let mut records = Vec::new();
    let mut samples = Vec::new();
    for (r, s) in per_thread.drain(..) {
        records.extend(r);
        samples.extend(s);
    }
    records.sort_by_key(|r| r.op_index);
    samples.sort_by_key(|s| s.op_index);

    let wall_ns =
        match (records.first(), records.iter().map(|r| r.intended_ns + r.latency_ns).max()) {
            (Some(first), Some(last_done)) => last_done.saturating_sub(first.intended_ns),
            _ => 0,
        };

    let state = state.into_inner().unwrap_or_else(|e| e.into_inner());
    let availability = state.target.availability().since(&availability_before);
    (
        state.target,
        RunOutcome {
            records,
            samples,
            log: state.log,
            wall_ns,
            skipped_deletes: state.skipped_deletes,
            availability,
        },
    )
}

/// The mutation bookkeeping of a concurrent run: the live-id set, the
/// application-ordered mutation log, and the skipped-delete count, behind
/// one mutex so "log order" and "order the target applied the mutations"
/// are the same order by construction.
struct MutationLedger {
    live: Vec<u64>,
    log: Vec<Mutation>,
    skipped_deletes: usize,
}

/// Drive a [`ConcurrentServeTarget`] with `ops` at the arrival times of
/// `schedule`.
///
/// The concurrent sibling of [`run_open_loop`]: the target synchronizes
/// itself, so the harness serializes only the *bookkeeping* of mutations
/// (one mutex held across `apply mutation + append to log`, which makes
/// the log's order the application order) and takes **no lock around
/// unsampled queries** — a mutation in flight never blocks them, and their
/// recorded latencies expose any stall the target itself introduces.
///
/// A *sampled* query briefly holds the mutation ledger closed while it
/// runs, so its recorded `version` is exactly the state it executed
/// against — that is what lets the recall oracle replay the log serially
/// and demand a bit-identical answer. Sampling is sparse (`sample_every`),
/// so this does not meaningfully serialize the run.
///
/// # Panics
///
/// Panics under the same conditions as [`run_open_loop`].
pub fn run_open_loop_concurrent<T: ConcurrentServeTarget + Send + Sync>(
    target: T,
    queries: &[Vec<f64>],
    insert_rows: &[Vec<f64>],
    schedule: &Schedule,
    ops: &[Operation],
    config: &RunnerConfig,
) -> (T, RunOutcome) {
    assert_eq!(ops.len(), schedule.len(), "operation stream and schedule must have equal length");
    assert!(config.dispatch_threads > 0, "at least one dispatch thread is required");

    let availability_before = target.availability();
    let ledger = Mutex::new(MutationLedger {
        live: config.initial_live.clone(),
        log: Vec::new(),
        skipped_deletes: 0,
    });
    let cursor = AtomicUsize::new(0);
    let offsets = schedule.offsets_ns();

    let mut per_thread: Vec<(Vec<OpRecord>, Vec<RecallSample>)> = std::thread::scope(|scope| {
        let start = Instant::now();
        let handles: Vec<_> = (0..config.dispatch_threads)
            .map(|_| {
                let target = &target;
                let ledger = &ledger;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut records = Vec::new();
                    let mut samples = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ops.len() {
                            break;
                        }
                        let intended_ns = offsets[i];
                        wait_until(start, intended_ns);
                        let warm = i < config.warmup_ops;
                        let kind = match ops[i] {
                            Operation::Query { query_index } => {
                                let sampled = !warm
                                    && config.sample_every > 0
                                    && i.is_multiple_of(config.sample_every);
                                if sampled {
                                    // Pin the version: hold the ledger so no
                                    // mutation lands between reading the log
                                    // length and executing the query.
                                    let guard = ledger.lock().unwrap_or_else(|e| e.into_inner());
                                    let version = guard.log.len();
                                    let answer = target.query(&queries[query_index], config.k);
                                    drop(guard);
                                    samples.push(RecallSample {
                                        op_index: i,
                                        query_index,
                                        version,
                                        answer,
                                    });
                                } else {
                                    // The common case: completely lock-free
                                    // from the harness's side.
                                    target.query(&queries[query_index], config.k);
                                }
                                OpKind::Query
                            }
                            Operation::Insert { row_index } => {
                                let mut guard = ledger.lock().unwrap_or_else(|e| e.into_inner());
                                let id = target.insert(&insert_rows[row_index]);
                                guard.live.push(id);
                                guard.log.push(Mutation::Insert { id, row_index });
                                OpKind::Insert
                            }
                            Operation::Delete { pick } => {
                                let mut guard = ledger.lock().unwrap_or_else(|e| e.into_inner());
                                if guard.live.is_empty() {
                                    guard.skipped_deletes += 1;
                                } else {
                                    let slot = (pick % guard.live.len() as u64) as usize;
                                    let id = guard.live.swap_remove(slot);
                                    target.delete(id);
                                    guard.log.push(Mutation::Delete { id });
                                }
                                OpKind::Delete
                            }
                        };
                        if !warm {
                            let done_ns = start.elapsed().as_nanos() as u64;
                            records.push(OpRecord {
                                op_index: i,
                                kind,
                                intended_ns,
                                latency_ns: done_ns.saturating_sub(intended_ns),
                            });
                        }
                    }
                    (records, samples)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("dispatch thread panicked")).collect()
    });

    let mut records = Vec::new();
    let mut samples = Vec::new();
    for (r, s) in per_thread.drain(..) {
        records.extend(r);
        samples.extend(s);
    }
    records.sort_by_key(|r| r.op_index);
    samples.sort_by_key(|s| s.op_index);

    let wall_ns =
        match (records.first(), records.iter().map(|r| r.intended_ns + r.latency_ns).max()) {
            (Some(first), Some(last_done)) => last_done.saturating_sub(first.intended_ns),
            _ => 0,
        };

    let ledger = ledger.into_inner().unwrap_or_else(|e| e.into_inner());
    let availability = target.availability().since(&availability_before);
    let outcome = RunOutcome {
        records,
        samples,
        log: ledger.log,
        wall_ns,
        skipped_deletes: ledger.skipped_deletes,
        availability,
    };
    (target, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{operation_stream, OpMix};

    /// A toy exact target: linear scan under squared Euclidean distance.
    struct ScanTarget {
        rows: Vec<(u64, Vec<f64>)>,
        next_id: u64,
    }

    impl ScanTarget {
        fn new(base: &[Vec<f64>]) -> ScanTarget {
            ScanTarget {
                rows: base.iter().cloned().enumerate().map(|(i, r)| (i as u64, r)).collect(),
                next_id: base.len() as u64,
            }
        }
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    impl ServeTarget for ScanTarget {
        fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
            let mut scored: Vec<(f64, u64)> =
                self.rows.iter().map(|(id, r)| (sq_dist(query, r), *id)).collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            scored.into_iter().take(k).map(|(_, id)| id).collect()
        }

        fn insert(&mut self, row: &[f64]) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            self.rows.push((id, row.to_vec()));
            id
        }

        fn delete(&mut self, id: u64) -> bool {
            match self.rows.iter().position(|(rid, _)| *rid == id) {
                Some(pos) => {
                    self.rows.swap_remove(pos);
                    true
                }
                None => false,
            }
        }
    }

    fn toy_rows(n: usize, salt: u64) -> Vec<Vec<f64>> {
        let mut rng = crate::rng::SplitMix64::new(salt);
        (0..n).map(|_| (0..4).map(|_| rng.next_f64() * 10.0).collect()).collect()
    }

    #[test]
    fn every_operation_is_recorded_exactly_once() {
        let base = toy_rows(50, 1);
        let queries = toy_rows(16, 2);
        let inserts = toy_rows(64, 3);
        let ops = operation_stream(7, OpMix::new(3, 1, 1), 200, queries.len());
        let schedule = Schedule::uniform(50_000.0, ops.len());
        let config = RunnerConfig {
            k: 5,
            dispatch_threads: 2,
            initial_live: (0..50).collect(),
            ..RunnerConfig::default()
        };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &inserts, &schedule, &ops, &config);
        assert_eq!(outcome.records.len(), ops.len());
        let indexes: Vec<usize> = outcome.records.iter().map(|r| r.op_index).collect();
        assert_eq!(indexes, (0..ops.len()).collect::<Vec<_>>());
        assert_eq!(
            outcome.log.len() + outcome.skipped_deletes,
            crate::ops::insert_count(&ops) + crate::ops::delete_count(&ops)
        );
    }

    #[test]
    fn warmup_ops_execute_but_are_not_recorded() {
        let base = toy_rows(20, 4);
        let queries = toy_rows(8, 5);
        let ops = operation_stream(9, OpMix::query_only(), 100, queries.len());
        let schedule = Schedule::uniform(100_000.0, ops.len());
        let config = RunnerConfig { k: 3, warmup_ops: 30, ..RunnerConfig::default() };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &[], &schedule, &ops, &config);
        assert_eq!(outcome.records.len(), 70);
        assert!(outcome.records.iter().all(|r| r.op_index >= 30));
    }

    #[test]
    fn sampled_answers_match_a_serial_replay() {
        let base = toy_rows(40, 6);
        let queries = toy_rows(10, 7);
        let inserts = toy_rows(64, 8);
        let ops = operation_stream(11, OpMix::new(4, 1, 1), 300, queries.len());
        let schedule = Schedule::uniform(80_000.0, ops.len());
        let config = RunnerConfig {
            k: 5,
            sample_every: 7,
            initial_live: (0..40).collect(),
            ..RunnerConfig::default()
        };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &inserts, &schedule, &ops, &config);
        assert!(!outcome.samples.is_empty());

        // Replay the mutation log serially; at each sample's version the
        // replayed target must answer exactly what the run recorded
        // (single dispatch thread => stream order == application order).
        let mut replay = ScanTarget::new(&base);
        let mut applied = 0usize;
        for sample in &outcome.samples {
            while applied < sample.version {
                match outcome.log[applied] {
                    Mutation::Insert { id, row_index } => {
                        let got = replay.insert(&inserts[row_index]);
                        assert_eq!(got, id);
                    }
                    Mutation::Delete { id } => {
                        assert!(replay.delete(id));
                    }
                }
                applied += 1;
            }
            assert_eq!(replay.query(&queries[sample.query_index], config.k), sample.answer);
        }
    }

    /// The toy scan target wrapped for the concurrent runner: internally
    /// synchronized (one mutex), all methods `&self`.
    struct LockedScanTarget(Mutex<ScanTarget>);

    impl ConcurrentServeTarget for LockedScanTarget {
        fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
            self.0.lock().unwrap().query(query, k)
        }

        fn insert(&self, row: &[f64]) -> u64 {
            self.0.lock().unwrap().insert(row)
        }

        fn delete(&self, id: u64) -> bool {
            self.0.lock().unwrap().delete(id)
        }
    }

    #[test]
    fn concurrent_sampled_answers_match_a_serial_replay() {
        let base = toy_rows(40, 20);
        let queries = toy_rows(10, 21);
        let inserts = toy_rows(96, 22);
        let ops = operation_stream(23, OpMix::new(4, 1, 1), 400, queries.len());
        let schedule = Schedule::uniform(40_000.0, ops.len());
        let config = RunnerConfig {
            k: 5,
            dispatch_threads: 4,
            sample_every: 7,
            initial_live: (0..40).collect(),
            ..RunnerConfig::default()
        };
        let (_, outcome) = run_open_loop_concurrent(
            LockedScanTarget(Mutex::new(ScanTarget::new(&base))),
            &queries,
            &inserts,
            &schedule,
            &ops,
            &config,
        );
        assert!(!outcome.samples.is_empty());
        assert_eq!(
            outcome.log.len() + outcome.skipped_deletes,
            crate::ops::insert_count(&ops) + crate::ops::delete_count(&ops)
        );

        // However the four dispatch threads interleaved, replaying the
        // mutation log serially up to each sample's pinned version must
        // reproduce its answer exactly.
        let mut replay = ScanTarget::new(&base);
        let mut applied = 0usize;
        let mut samples = outcome.samples.clone();
        samples.sort_by_key(|s| s.version);
        for sample in &samples {
            while applied < sample.version {
                match outcome.log[applied] {
                    Mutation::Insert { id, row_index } => {
                        assert_eq!(replay.insert(&inserts[row_index]), id);
                    }
                    Mutation::Delete { id } => {
                        assert!(replay.delete(id));
                    }
                }
                applied += 1;
            }
            assert_eq!(
                replay.query(&queries[sample.query_index], config.k),
                sample.answer,
                "sample at op {} (version {}) diverged from the serial replay",
                sample.op_index,
                sample.version
            );
        }
    }

    #[test]
    fn late_schedules_report_queueing_delay() {
        // A schedule far faster than the target can serve: all arrivals at
        // t=0 except the last. Every record's latency then includes the
        // time it spent queued behind earlier operations.
        let base = toy_rows(400, 9);
        let queries = toy_rows(4, 10);
        let ops = operation_stream(13, OpMix::query_only(), 64, queries.len());
        let schedule = Schedule::uniform(100_000_000.0, ops.len());
        let config = RunnerConfig { k: 5, ..RunnerConfig::default() };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &[], &schedule, &ops, &config);
        let first = outcome.records.first().unwrap().latency_ns;
        let last = outcome.records.last().unwrap().latency_ns;
        assert!(
            last > first,
            "later arrivals should accumulate queueing delay: first {first}ns last {last}ns"
        );
    }

    /// A target that degrades on every third query, with counters that
    /// started non-zero before the run (the runner must report deltas).
    struct DegradingTarget {
        inner: ScanTarget,
        queries_served: std::sync::atomic::AtomicU64,
        baseline: AvailabilityCounters,
    }

    impl ServeTarget for DegradingTarget {
        fn query(&self, query: &[f64], k: usize) -> Vec<u64> {
            self.queries_served.fetch_add(1, Ordering::Relaxed);
            self.inner.query(query, k)
        }

        fn insert(&mut self, row: &[f64]) -> u64 {
            self.inner.insert(row)
        }

        fn delete(&mut self, id: u64) -> bool {
            self.inner.delete(id)
        }

        fn availability(&self) -> AvailabilityCounters {
            let served = self.queries_served.load(Ordering::Relaxed);
            AvailabilityCounters {
                degraded_queries: self.baseline.degraded_queries + served / 3,
                shard_retries: self.baseline.shard_retries + served,
                breaker_opens: self.baseline.breaker_opens,
            }
        }
    }

    #[test]
    fn availability_counters_report_the_runs_delta_not_the_lifetime_total() {
        let base = toy_rows(30, 14);
        let queries = toy_rows(8, 15);
        let ops = operation_stream(17, OpMix::query_only(), 90, queries.len());
        let schedule = Schedule::uniform(100_000.0, ops.len());
        let target = DegradingTarget {
            inner: ScanTarget::new(&base),
            queries_served: std::sync::atomic::AtomicU64::new(0),
            baseline: AvailabilityCounters {
                degraded_queries: 7,
                shard_retries: 100,
                breaker_opens: 2,
            },
        };
        let config = RunnerConfig { k: 3, ..RunnerConfig::default() };
        let (_, outcome) = run_open_loop(target, &queries, &[], &schedule, &ops, &config);
        // 90 queries served: the pre-run baseline must be subtracted out.
        assert_eq!(outcome.availability.degraded_queries, 30);
        assert_eq!(outcome.availability.shard_retries, 90);
        assert_eq!(outcome.availability.breaker_opens, 0);
    }

    #[test]
    fn plain_targets_report_zero_availability_movement() {
        let base = toy_rows(10, 16);
        let queries = toy_rows(4, 17);
        let ops = operation_stream(19, OpMix::query_only(), 20, queries.len());
        let schedule = Schedule::uniform(100_000.0, ops.len());
        let config = RunnerConfig { k: 2, ..RunnerConfig::default() };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &[], &schedule, &ops, &config);
        assert_eq!(outcome.availability, AvailabilityCounters::default());
    }

    #[test]
    fn deletes_against_an_empty_live_set_are_skipped() {
        let base = toy_rows(10, 11);
        let queries = toy_rows(4, 12);
        let ops = vec![Operation::Delete { pick: 3 }, Operation::Delete { pick: 5 }];
        let schedule = Schedule::uniform(10_000.0, ops.len());
        let config = RunnerConfig { k: 2, ..RunnerConfig::default() };
        let (_, outcome) =
            run_open_loop(ScanTarget::new(&base), &queries, &[], &schedule, &ops, &config);
        assert_eq!(outcome.skipped_deletes, 2);
        assert!(outcome.log.is_empty());
    }
}
