//! The recall oracle: exact ground truth for sampled queries, at the
//! exact version each one executed under.
//!
//! Brute-forcing the full mutable dataset once per sample would dominate
//! the benchmark, so the oracle splits the work:
//!
//! * **Base side, precomputed once per query**: the caller brute-forces
//!   each sample query's neighbors over the *immutable base dataset* to a
//!   depth of `k + total planned deletes` — deep enough that however many
//!   base points a run tombstones, at least `k` live base candidates
//!   survive the filter.
//! * **Delta side, reconstructed per sample**: replaying the first
//!   `version` entries of the run's mutation log yields exactly the live
//!   inserted rows that query could see; they are scored with the
//!   caller's divergence and merged under the engine's `(divergence, id)`
//!   total order.
//!
//! Recall is then `|answer ∩ truth| / k` (denominator capped by the live
//! point count). The distance function is a parameter so the crate stays
//! dependency-free — the serving bench passes the Bregman divergence the
//! index was built with.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::runner::{Mutation, RecallSample};

/// Exact base-side neighbors of one sample query, ascending by
/// `(divergence, id)`. Depth must be at least `k` plus the number of
/// deletes the operation stream can apply (see [`crate::ops::delete_count`]).
#[derive(Debug, Clone)]
pub struct BaseNeighbors {
    /// `(id, divergence)` pairs, best first.
    pub neighbors: Vec<(u64, f64)>,
}

/// Ground-truth ids for `sample`, reconstructed at the sample's version.
///
/// `base` is the sample query's precomputed base-side neighbor list;
/// `insert_rows` the run's insert pool; `log` the run's full mutation
/// log; `dist` the divergence from a query to a stored row.
pub fn truth_at_version(
    sample: &RecallSample,
    base: &BaseNeighbors,
    query: &[f64],
    insert_rows: &[Vec<f64>],
    log: &[Mutation],
    dist: &dyn Fn(&[f64], &[f64]) -> f64,
    k: usize,
) -> Vec<u64> {
    let mut deleted: HashSet<u64> = HashSet::new();
    let mut live_inserts: HashMap<u64, usize> = HashMap::new();
    for mutation in &log[..sample.version] {
        match *mutation {
            Mutation::Insert { id, row_index } => {
                live_inserts.insert(id, row_index);
            }
            Mutation::Delete { id } => {
                live_inserts.remove(&id);
                deleted.insert(id);
            }
        }
    }

    let mut candidates: Vec<(f64, u64)> = base
        .neighbors
        .iter()
        .filter(|(id, _)| !deleted.contains(id))
        .map(|&(id, d)| (d, id))
        .collect();
    candidates.extend(
        live_inserts.iter().map(|(&id, &row_index)| (dist(query, &insert_rows[row_index]), id)),
    );
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, id)| id).collect()
}

/// Recall of one sampled answer against its reconstructed truth:
/// `|answer ∩ truth| / |truth|` (1.0 when the truth set is empty).
pub fn sample_recall(sample: &RecallSample, truth: &[u64]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_set: HashSet<u64> = truth.iter().copied().collect();
    let hits = sample.answer.iter().filter(|id| truth_set.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Mean recall over a run's samples. `base_for` maps a sample's
/// `query_index` to its precomputed base-side neighbors, `query_for` to
/// the query vector itself. Returns `None` when there are no samples.
#[allow(clippy::too_many_arguments)]
pub fn mean_recall(
    samples: &[RecallSample],
    base_for: &dyn Fn(usize) -> BaseNeighbors,
    query_for: &dyn Fn(usize) -> Vec<f64>,
    insert_rows: &[Vec<f64>],
    log: &[Mutation],
    dist: &dyn Fn(&[f64], &[f64]) -> f64,
    k: usize,
) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut total = 0.0;
    for sample in samples {
        let base = base_for(sample.query_index);
        let query = query_for(sample.query_index);
        let truth = truth_at_version(sample, &base, &query, insert_rows, log, dist, k);
        total += sample_recall(sample, &truth);
    }
    Some(total / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn truth_filters_deleted_base_points() {
        // Base ids 0,1,2 at distances 1,2,3; id 1 deleted before the
        // sample's version.
        let base = BaseNeighbors { neighbors: vec![(0, 1.0), (1, 2.0), (2, 3.0)] };
        let log = vec![Mutation::Delete { id: 1 }];
        let sample = RecallSample { op_index: 5, query_index: 0, version: 1, answer: vec![0, 2] };
        let truth = truth_at_version(&sample, &base, &[0.0], &[], &log, &sq, 2);
        assert_eq!(truth, vec![0, 2]);
        assert_eq!(sample_recall(&sample, &truth), 1.0);
    }

    #[test]
    fn truth_merges_live_inserts_by_distance() {
        let base = BaseNeighbors { neighbors: vec![(0, 1.0), (1, 4.0)] };
        // Insert pool row 0 at coordinate 1.5 → distance 2.25 to query 0:
        // lands between the two base points. Inserted id is 100.
        let insert_rows = vec![vec![1.5]];
        let log = vec![Mutation::Insert { id: 100, row_index: 0 }];
        let sample = RecallSample { op_index: 1, query_index: 0, version: 1, answer: vec![0, 1] };
        let truth = truth_at_version(&sample, &base, &[0.0], &insert_rows, &log, &sq, 2);
        assert_eq!(truth, vec![0, 100]);
        // The answer missed the inserted point: recall 1/2.
        assert_eq!(sample_recall(&sample, &truth), 0.5);
    }

    #[test]
    fn truth_respects_version_not_full_log() {
        let base = BaseNeighbors { neighbors: vec![(0, 1.0)] };
        let insert_rows = vec![vec![0.1]];
        // The insert happens *after* the sample's version: invisible.
        let log = vec![Mutation::Insert { id: 7, row_index: 0 }];
        let sample = RecallSample { op_index: 0, query_index: 0, version: 0, answer: vec![0] };
        let truth = truth_at_version(&sample, &base, &[0.0], &insert_rows, &log, &sq, 2);
        assert_eq!(truth, vec![0]);
    }

    #[test]
    fn deleted_insert_does_not_resurface() {
        let base = BaseNeighbors { neighbors: vec![(0, 5.0)] };
        let insert_rows = vec![vec![0.0]];
        let log = vec![Mutation::Insert { id: 9, row_index: 0 }, Mutation::Delete { id: 9 }];
        let sample = RecallSample { op_index: 3, query_index: 0, version: 2, answer: vec![0] };
        let truth = truth_at_version(&sample, &base, &[0.0], &insert_rows, &log, &sq, 1);
        assert_eq!(truth, vec![0]);
    }

    #[test]
    fn mean_recall_averages_over_samples() {
        let base = BaseNeighbors { neighbors: vec![(0, 1.0), (1, 2.0)] };
        let samples = vec![
            RecallSample { op_index: 0, query_index: 0, version: 0, answer: vec![0, 1] },
            RecallSample { op_index: 2, query_index: 0, version: 0, answer: vec![0, 9] },
        ];
        let got =
            mean_recall(&samples, &|_| base.clone(), &|_| vec![0.0], &[], &[], &sq, 2).unwrap();
        assert!((got - 0.75).abs() < 1e-12);
        assert_eq!(mean_recall(&[], &|_| base.clone(), &|_| vec![0.0], &[], &[], &sq, 2), None);
    }
}
