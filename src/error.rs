//! The unified error type of the façade API.
//!
//! Every layer of the workspace has its own error enum — [`CoreError`] for
//! index construction and search, [`EngineError`] for the batch engine,
//! [`PersistError`] for the storage format. The façade folds them into one
//! top-level [`Error`] with `#[non_exhaustive]` variants and full
//! source-chaining, so applications match on one type and `?` works across
//! every entry point.

use std::fmt;

use brepartition_core::CoreError;
use brepartition_engine::EngineError;
use pagestore::format::PersistError;

/// Convenience alias for results produced by the façade API.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure surfaced by the [`Index`](crate::Index) façade.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The [`IndexSpec`](crate::IndexSpec) (or a query request built on it)
    /// is invalid; nothing was built or opened.
    Spec(String),
    /// Index construction or search failed in the BrePartition core.
    Core(CoreError),
    /// The batch query engine rejected a configuration or a query.
    Engine(EngineError),
    /// Reading or writing persistent index artifacts failed (I/O error, bad
    /// magic or version, checksum mismatch, corrupt artifact).
    Persist(PersistError),
    /// A persisted index directory does not match what the caller (or its
    /// own spec envelope) says it holds — e.g. a directory saved for one
    /// method or divergence opened as another.
    Mismatch {
        /// What the spec envelope (or the caller) expected.
        expected: String,
        /// What the directory actually holds.
        found: String,
    },
    /// A background compaction failed on the index's worker thread. The
    /// failure is reported to the caller that waited on it
    /// ([`Index::compact`](crate::Index::compact)); the index itself is
    /// unchanged — queries keep serving the pre-compaction epoch.
    Compaction(String),
    /// A fault-tolerant sharded fan-out could not produce an acceptable
    /// answer: every shard failed, or a capacity-mode shard failed and the
    /// request did not opt in to partial results
    /// ([`Request::allow_partial`](crate::Request::allow_partial)).
    Unavailable {
        /// Shards that failed (after retries / breaker skips).
        shards_failed: usize,
        /// Shards that answered before the batch was rejected.
        shards_answered: usize,
        /// The first failing shard's error, for diagnosis.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Spec(message) => write!(f, "invalid index spec: {message}"),
            Error::Core(e) => write!(f, "index error: {e}"),
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::Persist(e) => write!(f, "persistence error: {e}"),
            Error::Compaction(message) => {
                write!(f, "background compaction failed: {message}")
            }
            Error::Mismatch { expected, found } => {
                write!(f, "index directory mismatch: expected {expected}, found {found}")
            }
            Error::Unavailable { shards_failed, shards_answered, reason } => {
                write!(
                    f,
                    "sharded query unavailable: {shards_failed} shard(s) failed with \
                     {shards_answered} answered ({reason}); retry later, or opt in to partial \
                     results with Request::allow_partial"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Persist(e) => Some(e),
            Error::Spec(_)
            | Error::Compaction(_)
            | Error::Mismatch { .. }
            | Error::Unavailable { .. } => None,
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources_chain_through_every_layer() {
        let core: Error = CoreError::EmptyDataset.into();
        assert!(core.to_string().contains("empty"));
        assert!(core.source().is_some());

        let engine: Error = EngineError::Config("zero threads".into()).into();
        assert!(engine.to_string().contains("zero threads"));
        assert!(engine.source().is_some());

        let persist: Error = PersistError::Corrupt("bad byte".into()).into();
        assert!(persist.to_string().contains("bad byte"));
        assert!(persist.source().is_some());

        let spec = Error::Spec("probability 1.5 out of range".into());
        assert!(spec.to_string().contains("1.5"));
        assert!(spec.source().is_none());

        let mismatch = Error::Mismatch { expected: "BBTree/ISD".into(), found: "VaFile".into() };
        assert!(mismatch.to_string().contains("BBTree/ISD"));
        assert!(mismatch.to_string().contains("VaFile"));
    }
}
