//! The [`Index`] façade: one spec-driven build/open/query API over all four
//! methods.
//!
//! # The registry
//!
//! Internally, every `(Method, DivergenceKind)` pair maps to one
//! `RegistryEntry` holding monomorphized `build` and `open` function
//! pointers. The entry is the *only* place that knows which concrete
//! backend type serves the pair; everything above it — [`Index::build`],
//! [`Index::open`], the engine, the bench harness — works with
//! `Arc<dyn SearchBackend>`. This replaces the per-method constructor
//! sprawl (`build_exact`, `bbtree_backend_for_kind`, …) with a single
//! lookup.
//!
//! # The spec envelope (self-describing directories)
//!
//! [`Index::save`] writes the backend's own artifacts plus [`SPEC_FILE`]: a
//! sealed envelope (magic [`SPEC_MAGIC`], FNV-1a checksummed, see
//! [`pagestore::format`]) holding the full [`IndexSpec`]. [`Index::open`]
//! reads that envelope first, so the caller never names a method or
//! divergence — the directory says what it holds — and a directory whose
//! artifacts disagree with its envelope (or that has no envelope at all)
//! fails with a descriptive [`Error`] instead of a decode panic.

use std::path::Path;
use std::sync::Arc;

use bregman::{
    DecomposableBregman, DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito,
    SquaredEuclidean,
};
use brepartition_core::BrePartitionIndex;
use brepartition_engine::{
    BBTreeBackend, BatchResult, BrePartitionBackend, EngineConfig, QueryEngine, QueryOutcome,
    SearchBackend, VaFileBackend,
};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError};

use crate::error::{Error, Result};
use crate::request::{QueryRequest, Request};
use crate::spec::{IndexSpec, Method};

/// Magic tag of the spec envelope ([`SPEC_FILE`]).
pub const SPEC_MAGIC: [u8; 8] = *b"BREPSPC1";

/// Format version of the spec envelope this build writes and reads.
pub const SPEC_VERSION: u32 = 1;

/// File name of the spec envelope within an index directory.
pub const SPEC_FILE: &str = "spec.meta";

type BuildFn = fn(&IndexSpec, &DenseDataset) -> Result<Arc<dyn SearchBackend>>;
type OpenFn = fn(&IndexSpec, &Path) -> Result<Arc<dyn SearchBackend>>;

/// One `(Method, DivergenceKind)` pair's constructors.
struct RegistryEntry {
    method: Method,
    divergence: DivergenceKind,
    build: BuildFn,
    open: OpenFn,
}

/// Build a BrePartition-family backend (exact or approximate per the spec).
fn build_bre(spec: &IndexSpec, data: &DenseDataset) -> Result<Arc<dyn SearchBackend>> {
    let index = BrePartitionIndex::build(spec.divergence, data, &spec.brepartition_config())?;
    Ok(wrap_bre(spec, index))
}

/// Open a BrePartition-family backend, cross-checking the index envelope's
/// divergence against the spec envelope before the full restore.
fn open_bre(spec: &IndexSpec, dir: &Path) -> Result<Arc<dyn SearchBackend>> {
    let found = BrePartitionIndex::peek_kind(dir)?;
    if found != spec.divergence {
        return Err(Error::Mismatch {
            expected: format!(
                "a {} index under divergence {}",
                spec.method.name(),
                spec.divergence.short_name()
            ),
            found: format!("BrePartition artifacts under divergence {}", found.short_name()),
        });
    }
    Ok(wrap_bre(spec, BrePartitionIndex::open(dir)?))
}

fn wrap_bre(spec: &IndexSpec, index: BrePartitionIndex) -> Arc<dyn SearchBackend> {
    match spec.method {
        Method::Approximate => {
            Arc::new(BrePartitionBackend::approximate(index, spec.approximate_config()))
        }
        _ => Arc::new(BrePartitionBackend::exact(index)),
    }
}

/// Build a BBT baseline backend for divergence `B`.
fn build_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        BBTreeBackend::build(B::default(), data, spec.bbtree_config(), spec.store_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a BBT baseline backend for divergence `B`.
fn open_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // DiskBBTree::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        BBTreeBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("BBTree", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Build a VA-file baseline backend for divergence `B`.
fn build_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        VaFileBackend::build(B::default(), data, spec.vafile_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a VA-file baseline backend for divergence `B`.
fn open_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // VaFile::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        VaFileBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("VaFile", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

fn backend_open_error(method: &str, e: brepartition_engine::EngineError) -> Error {
    Error::Persist(PersistError::Corrupt(format!("opening {method} artifacts failed: {e}")))
}

/// One registry row per divergence for a divergence-generic method.
macro_rules! per_divergence {
    ($method:expr, $build:ident, $open:ident) => {
        [
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::SquaredEuclidean,
                build: $build::<SquaredEuclidean>,
                open: $open::<SquaredEuclidean>,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::ItakuraSaito,
                build: $build::<ItakuraSaito>,
                open: $open::<ItakuraSaito>,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::Exponential,
                build: $build::<Exponential>,
                open: $open::<Exponential>,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::GeneralizedI,
                build: $build::<GeneralizedI>,
                open: $open::<GeneralizedI>,
            },
        ]
    };
}

/// The registry. BrePartition methods dispatch on `DivergenceKind` inside
/// the core (one entry per divergence keeps the key uniform); the baselines
/// monomorphize per divergence here.
fn registry() -> [RegistryEntry; 16] {
    let bre = |method: Method| {
        DivergenceKind::ALL.map(|divergence| RegistryEntry {
            method,
            divergence,
            build: build_bre,
            open: open_bre,
        })
    };
    let [a0, a1, a2, a3] = bre(Method::BrePartition);
    let [b0, b1, b2, b3] = bre(Method::Approximate);
    let [c0, c1, c2, c3] = per_divergence!(Method::BBTree, build_bbt, open_bbt);
    let [d0, d1, d2, d3] = per_divergence!(Method::VaFile, build_vaf, open_vaf);
    [a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3, d0, d1, d2, d3]
}

/// Look up the registry entry for a `(Method, DivergenceKind)` key.
fn registry_entry(method: Method, divergence: DivergenceKind) -> Result<RegistryEntry> {
    registry().into_iter().find(|e| e.method == method && e.divergence == divergence).ok_or_else(
        || {
            Error::Spec(format!(
                "no registered backend for method {} over divergence {}",
                method.name(),
                divergence.short_name()
            ))
        },
    )
}

/// A ready-to-query kNN index: any [`Method`] over any [`DivergenceKind`],
/// behind one type.
///
/// ```no_run
/// use brepartition::{Index, IndexSpec, QueryRequest, Request};
/// use brepartition::bregman::{DenseDataset, DivergenceKind};
///
/// # fn main() -> brepartition::Result<()> {
/// let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
/// let data = DenseDataset::from_rows(&rows).unwrap();
/// let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito);
/// let index = Index::build(&spec, &data)?;
/// index.save("idx".as_ref())?;
///
/// let reopened = Index::open("idx".as_ref())?; // method + divergence from the envelope
/// let result = reopened.query(&QueryRequest::new(&rows[0], 1))?;
/// assert_eq!(result.neighbors.len(), 1);
/// let batch = reopened.run(&Request::uniform(&rows, 2))?;
/// assert_eq!(batch.outcomes.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Index {
    spec: IndexSpec,
    backend: Arc<dyn SearchBackend>,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("spec", &self.spec)
            .field("backend", &self.backend.name())
            .field("len", &self.backend.len())
            .field("dim", &self.backend.dim())
            .finish()
    }
}

impl Index {
    /// Build an index over `data` as the spec describes.
    ///
    /// The spec is validated first; an invalid knob returns
    /// [`Error::Spec`] before any work happens.
    pub fn build(spec: &IndexSpec, data: &DenseDataset) -> Result<Index> {
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        let backend = (entry.build)(spec, data)?;
        Ok(Index { spec: *spec, backend })
    }

    /// Open an index directory written by [`Index::save`].
    ///
    /// The directory is self-describing: the spec envelope ([`SPEC_FILE`])
    /// names the method and divergence, so no caller-side dispatch is
    /// needed. A directory without an envelope (e.g. one written by a
    /// backend-level `save` call), or whose artifacts disagree with its
    /// envelope, fails with a descriptive error.
    pub fn open(dir: &Path) -> Result<Index> {
        let spec = read_spec(dir)?;
        // The envelope itself round-trips through the same validation as a
        // caller-constructed spec.
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        let backend = (entry.open)(&spec, dir)?;
        Ok(Index { spec, backend })
    }

    /// Persist the index (backend artifacts + spec envelope) to `dir`,
    /// creating it if needed.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(PersistError::from)?;
        self.backend.save(dir)?;
        let mut w = ByteWriter::new();
        self.spec.write_to(&mut w);
        std::fs::write(dir.join(SPEC_FILE), seal(&SPEC_MAGIC, SPEC_VERSION, &w.into_vec()))
            .map_err(PersistError::from)?;
        Ok(())
    }

    /// The spec this index was built (or reopened) with.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The search method.
    pub fn method(&self) -> Method {
        self.spec.method
    }

    /// The divergence queries are answered under.
    pub fn divergence(&self) -> DivergenceKind {
        self.spec.divergence
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.backend.dim()
    }

    /// The backend as an engine-ready handle (for callers composing their
    /// own [`QueryEngine`]).
    pub fn backend(&self) -> Arc<dyn SearchBackend> {
        Arc::clone(&self.backend)
    }

    /// A batch engine over this index with explicit configuration.
    pub fn engine(&self, config: EngineConfig) -> Result<QueryEngine> {
        Ok(QueryEngine::with_config(self.backend(), config)?)
    }

    /// Answer one query (fresh scratch state, no worker pool).
    pub fn query(&self, request: &QueryRequest<'_>) -> Result<QueryOutcome> {
        let mut scratch = self.backend.new_scratch();
        let lowered = request.as_engine_request();
        let started = std::time::Instant::now();
        let answer = self.backend.knn_with_options(
            &mut scratch,
            lowered.query,
            lowered.k,
            &lowered.options,
        )?;
        Ok(QueryOutcome {
            neighbors: answer.neighbors,
            candidates: answer.candidates,
            io: answer.io,
            latency_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Execute a batch across a default worker pool (machine parallelism,
    /// cold scratch). Use [`Index::engine`] for explicit control.
    pub fn run(&self, request: &Request<'_>) -> Result<BatchResult> {
        self.run_with(request, EngineConfig::default())
    }

    /// Execute a batch with explicit engine configuration.
    pub fn run_with(&self, request: &Request<'_>, config: EngineConfig) -> Result<BatchResult> {
        let engine = self.engine(config)?;
        Ok(engine.run_requests(&request.as_engine_requests())?)
    }
}

/// Read and unseal the spec envelope of an index directory.
fn read_spec(dir: &Path) -> Result<IndexSpec> {
    let path = dir.join(SPEC_FILE);
    let bytes = std::fs::read(&path).map_err(|e| {
        Error::Persist(PersistError::Corrupt(format!(
            "index directory {} has no readable spec envelope ({SPEC_FILE}): {e}; \
             directories saved by backend-level save calls predate the \
             envelope — re-save them through Index::save",
            dir.display()
        )))
    })?;
    let payload = unseal(&SPEC_MAGIC, SPEC_VERSION, &bytes)?;
    let mut r = ByteReader::new(payload);
    let spec = IndexSpec::read_from(&mut r)?;
    r.expect_end()?;
    Ok(spec)
}
