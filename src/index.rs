//! The [`Index`] façade: one spec-driven build/open/query API over all four
//! methods.
//!
//! # The registry
//!
//! Internally, every `(Method, DivergenceKind)` pair maps to one
//! `RegistryEntry` holding monomorphized `build` and `open` function
//! pointers. The entry is the *only* place that knows which concrete
//! backend type serves the pair; everything above it — [`Index::build`],
//! [`Index::open`], the engine, the bench harness — works with
//! `Arc<dyn SearchBackend>`. This replaces the per-method constructor
//! sprawl (`build_exact`, `bbtree_backend_for_kind`, …) with a single
//! lookup.
//!
//! # The spec envelope (self-describing directories)
//!
//! [`Index::save`] writes the backend's own artifacts plus [`SPEC_FILE`]: a
//! sealed envelope (magic [`SPEC_MAGIC`], FNV-1a checksummed, see
//! [`pagestore::format`]) holding the full [`IndexSpec`]. [`Index::open`]
//! reads that envelope first, so the caller never names a method or
//! divergence — the directory says what it holds — and a directory whose
//! artifacts disagree with its envelope (or that has no envelope at all),
//! or that contains entries no backend of the spec's method would write,
//! fails with a descriptive [`Error`] instead of a decode panic.
//!
//! # Online mutability (the delta layer)
//!
//! Every backend is built from a static snapshot, so writes are absorbed by
//! a [`DeltaSegment`] riding on the index — LSM-style: [`Index::insert`]
//! appends to an exact side segment, [`Index::delete`] tombstones, queries
//! merge the backend's kNN with an exact prepared-kernel scan of the delta
//! (tombstones filter both sides), and [`Index::compact`] folds the live
//! set back into a freshly built backend through the same registry as
//! [`Index::build`]. External ids are stable across compactions: the delta
//! carries the backend-internal → external id mapping, and an id, once
//! issued, is never reused. [`Index::save`] persists the delta as a sealed
//! [`DELTA_FILE`] log next to the spec envelope; [`Index::open`] replays it
//! (an absent log is an empty delta, so pre-mutability directories stay
//! readable). Batch serving sees a *consistent snapshot per batch*: the
//! serving handle returned by [`Index::backend`] (and used by
//! [`Index::run`]) freezes the delta at construction, so writes become
//! visible at the next batch boundary, never in the middle of one.
//!
//! Serving a collection too large (or too recall-hungry) for one index is
//! the job of the sharded tier: [`ShardedIndex`](crate::ShardedIndex) owns
//! N of these `Index` instances and scatter-gathers over them, reusing the
//! envelope machinery here for its own `shards.meta` (each shard
//! subdirectory is a full, self-describing `Index` directory).

use std::path::Path;
use std::sync::Arc;

use bregman::{
    DecomposableBregman, DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito,
    PointId, SquaredEuclidean,
};
pub use brepartition_core::delta::DELTA_FILE;
use brepartition_core::{BrePartitionIndex, CoreError, DeltaSegment};
use brepartition_engine::{
    BBTreeBackend, BatchResult, BrePartitionBackend, DeltaOverlayBackend, EngineConfig,
    QueryEngine, QueryOutcome, SearchBackend, VaFileBackend,
};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError};

use crate::error::{Error, Result};
use crate::request::{QueryRequest, Request};
use crate::spec::{IndexSpec, Method};

/// Magic tag of the spec envelope ([`SPEC_FILE`]).
pub const SPEC_MAGIC: [u8; 8] = *b"BREPSPC1";

/// Format version of the spec envelope this build writes and reads.
///
/// Version 2 appends the `f32_candidates` flag byte to the payload.
/// Version-1 envelopes remain readable; the flag defaults to off.
pub const SPEC_VERSION: u32 = 2;

/// Previous spec-envelope version, still accepted by [`Index::open`].
pub const LEGACY_SPEC_VERSION: u32 = 1;

/// File name of the spec envelope within an index directory.
pub const SPEC_FILE: &str = "spec.meta";

type BuildFn = fn(&IndexSpec, &DenseDataset) -> Result<Arc<dyn SearchBackend>>;
type OpenFn = fn(&IndexSpec, &Path) -> Result<Arc<dyn SearchBackend>>;

/// Files the BrePartition-family backends write into an index directory.
const BRE_ARTIFACTS: &[&str] =
    &[brepartition_core::persist::META_FILE, brepartition_core::persist::PAGES_FILE];
/// Files the BBT baseline writes into an index directory.
const BBT_ARTIFACTS: &[&str] =
    &[bbtree::disk::TREE_FILE, bbtree::disk::PAGES_FILE, bbtree::disk::PHI_FILE];
/// Files the VA-file baseline writes into an index directory.
const VAF_ARTIFACTS: &[&str] = &[vafile::search::META_FILE, vafile::search::PAGES_FILE];

/// One `(Method, DivergenceKind)` pair's constructors, plus the artifact
/// files its `save` path writes (the allowlist `Index::open` enforces —
/// kept next to the constructors so a backend growing a new artifact
/// cannot drift apart from the directory check).
struct RegistryEntry {
    method: Method,
    divergence: DivergenceKind,
    build: BuildFn,
    open: OpenFn,
    artifacts: &'static [&'static str],
}

/// Build a BrePartition-family backend (exact or approximate per the spec).
fn build_bre(spec: &IndexSpec, data: &DenseDataset) -> Result<Arc<dyn SearchBackend>> {
    let index = BrePartitionIndex::build(spec.divergence, data, &spec.brepartition_config())?;
    Ok(wrap_bre(spec, index))
}

/// Open a BrePartition-family backend, cross-checking the index envelope's
/// divergence against the spec envelope before the full restore.
fn open_bre(spec: &IndexSpec, dir: &Path) -> Result<Arc<dyn SearchBackend>> {
    let found = BrePartitionIndex::peek_kind(dir)?;
    if found != spec.divergence {
        return Err(Error::Mismatch {
            expected: format!(
                "a {} index under divergence {}",
                spec.method.name(),
                spec.divergence.short_name()
            ),
            found: format!("BrePartition artifacts under divergence {}", found.short_name()),
        });
    }
    Ok(wrap_bre(spec, BrePartitionIndex::open(dir)?))
}

fn wrap_bre(spec: &IndexSpec, index: BrePartitionIndex) -> Arc<dyn SearchBackend> {
    match spec.method {
        Method::Approximate => {
            Arc::new(BrePartitionBackend::approximate(index, spec.approximate_config()))
        }
        _ => Arc::new(BrePartitionBackend::exact(index)),
    }
}

/// Build a BBT baseline backend for divergence `B`.
fn build_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        BBTreeBackend::build(B::default(), data, spec.bbtree_config(), spec.store_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a BBT baseline backend for divergence `B`.
fn open_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // DiskBBTree::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        BBTreeBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("BBTree", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Build a VA-file baseline backend for divergence `B`.
fn build_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        VaFileBackend::build(B::default(), data, spec.vafile_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a VA-file baseline backend for divergence `B`.
fn open_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // VaFile::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        VaFileBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("VaFile", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

fn backend_open_error(method: &str, e: brepartition_engine::EngineError) -> Error {
    Error::Persist(PersistError::Corrupt(format!("opening {method} artifacts failed: {e}")))
}

/// One registry row per divergence for a divergence-generic method.
macro_rules! per_divergence {
    ($method:expr, $build:ident, $open:ident, $artifacts:expr) => {
        [
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::SquaredEuclidean,
                build: $build::<SquaredEuclidean>,
                open: $open::<SquaredEuclidean>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::ItakuraSaito,
                build: $build::<ItakuraSaito>,
                open: $open::<ItakuraSaito>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::Exponential,
                build: $build::<Exponential>,
                open: $open::<Exponential>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::GeneralizedI,
                build: $build::<GeneralizedI>,
                open: $open::<GeneralizedI>,
                artifacts: $artifacts,
            },
        ]
    };
}

/// The registry. BrePartition methods dispatch on `DivergenceKind` inside
/// the core (one entry per divergence keeps the key uniform); the baselines
/// monomorphize per divergence here.
fn registry() -> [RegistryEntry; 16] {
    let bre = |method: Method| {
        DivergenceKind::ALL.map(|divergence| RegistryEntry {
            method,
            divergence,
            build: build_bre,
            open: open_bre,
            artifacts: BRE_ARTIFACTS,
        })
    };
    let [a0, a1, a2, a3] = bre(Method::BrePartition);
    let [b0, b1, b2, b3] = bre(Method::Approximate);
    let [c0, c1, c2, c3] = per_divergence!(Method::BBTree, build_bbt, open_bbt, BBT_ARTIFACTS);
    let [d0, d1, d2, d3] = per_divergence!(Method::VaFile, build_vaf, open_vaf, VAF_ARTIFACTS);
    [a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3, d0, d1, d2, d3]
}

/// Look up the registry entry for a `(Method, DivergenceKind)` key.
fn registry_entry(method: Method, divergence: DivergenceKind) -> Result<RegistryEntry> {
    registry().into_iter().find(|e| e.method == method && e.divergence == divergence).ok_or_else(
        || {
            Error::Spec(format!(
                "no registered backend for method {} over divergence {}",
                method.name(),
                divergence.short_name()
            ))
        },
    )
}

/// A ready-to-query kNN index: any [`Method`] over any [`DivergenceKind`],
/// behind one type.
///
/// ```no_run
/// use brepartition::{Index, IndexSpec, QueryRequest, Request};
/// use brepartition::bregman::{DenseDataset, DivergenceKind};
///
/// # fn main() -> brepartition::Result<()> {
/// let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
/// let data = DenseDataset::from_rows(&rows).unwrap();
/// let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito);
/// let index = Index::build(&spec, &data)?;
/// index.save("idx".as_ref())?;
///
/// let reopened = Index::open("idx".as_ref())?; // method + divergence from the envelope
/// let result = reopened.query(&QueryRequest::new(&rows[0], 1))?;
/// assert_eq!(result.neighbors.len(), 1);
/// let batch = reopened.run(&Request::uniform(&rows, 2))?;
/// assert_eq!(batch.outcomes.len(), 2);
/// # Ok(())
/// # }
/// ```
/// Cloning an `Index` is cheap on the backend side (shared behind an
/// [`Arc`]) but snapshots the mutable delta: the clones' inserts and
/// deletes diverge from that point on.
#[derive(Clone)]
pub struct Index {
    spec: IndexSpec,
    backend: Arc<dyn SearchBackend>,
    /// Copy-on-write: serving snapshots share this `Arc`; a mutation after
    /// a snapshot was taken clones the segment once (`Arc::make_mut`), so
    /// snapshotting itself is a refcount bump, never an O(delta) copy.
    delta: Arc<DeltaSegment>,
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("spec", &self.spec)
            .field("backend", &self.backend.name())
            .field("len", &self.len())
            .field("dim", &self.backend.dim())
            .field("delta_rows", &self.delta.delta_rows())
            .field("tombstones", &self.delta.tombstone_count())
            .finish()
    }
}

impl Index {
    /// Build an index over `data` as the spec describes.
    ///
    /// The spec is validated first; an invalid knob returns
    /// [`Error::Spec`] before any work happens.
    pub fn build(spec: &IndexSpec, data: &DenseDataset) -> Result<Index> {
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        let backend = (entry.build)(spec, data)?;
        let delta = DeltaSegment::new(spec.divergence, backend.dim(), backend.len())
            .map_err(Error::Core)?;
        Ok(Index { spec: *spec, backend, delta: Arc::new(delta) })
    }

    /// Open an index directory written by [`Index::save`].
    ///
    /// The directory is self-describing: the spec envelope ([`SPEC_FILE`])
    /// names the method and divergence, so no caller-side dispatch is
    /// needed. A directory without an envelope (e.g. one written by a
    /// backend-level `save` call), whose artifacts disagree with its
    /// envelope, or that holds entries no backend of the spec's method
    /// writes (a foreign file dropped into the directory), fails with a
    /// descriptive error. The delta log ([`DELTA_FILE`]) is replayed if
    /// present; its absence means an empty delta, so directories written
    /// before the mutability layer stay readable.
    pub fn open(dir: &Path) -> Result<Index> {
        let spec = read_spec(dir)?;
        // The envelope itself round-trips through the same validation as a
        // caller-constructed spec.
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        check_directory_entries(dir, &spec, entry.artifacts)?;
        let backend = (entry.open)(&spec, dir)?;
        let delta = match std::fs::read(dir.join(DELTA_FILE)) {
            Ok(bytes) => {
                DeltaSegment::from_log_bytes(&bytes, spec.divergence, backend.dim(), backend.len())
                    .map_err(Error::Core)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                DeltaSegment::new(spec.divergence, backend.dim(), backend.len())
                    .map_err(Error::Core)?
            }
            Err(e) => return Err(Error::Persist(PersistError::Io(e))),
        };
        Ok(Index { spec, backend, delta: Arc::new(delta) })
    }

    /// Persist the index (backend artifacts + spec envelope + delta log)
    /// to `dir`, creating it if needed.
    ///
    /// The delta log captures pending inserts and tombstones verbatim —
    /// saving does *not* compact, so a reopened index resumes with the
    /// exact same live set, id mapping and issue counter.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(PersistError::from)?;
        self.backend.save(dir)?;
        let mut w = ByteWriter::new();
        self.spec.write_to(&mut w);
        std::fs::write(dir.join(SPEC_FILE), seal(&SPEC_MAGIC, SPEC_VERSION, &w.into_vec()))
            .map_err(PersistError::from)?;
        std::fs::write(dir.join(DELTA_FILE), self.delta.to_log_bytes())
            .map_err(PersistError::from)?;
        Ok(())
    }

    /// The spec this index was built (or reopened) with.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The search method.
    pub fn method(&self) -> Method {
        self.spec.method
    }

    /// The divergence queries are answered under.
    pub fn divergence(&self) -> DivergenceKind {
        self.spec.divergence
    }

    /// Number of **live** points: backend points minus tombstones plus
    /// live delta rows.
    pub fn len(&self) -> usize {
        self.delta.live_len()
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.backend.dim()
    }

    /// The mutable delta layer riding on the backend (inspection only; use
    /// [`Index::insert`] / [`Index::delete`] / [`Index::compact`] to
    /// change it).
    pub fn delta(&self) -> &DeltaSegment {
        &self.delta
    }

    /// Append one point, returning its stable external id.
    ///
    /// The write lands in the delta segment — no backend rebuild — and is
    /// visible to every query and batch issued *after* this call (batches
    /// already running keep their snapshot). The row must match the
    /// index's dimensionality and the divergence's domain.
    ///
    /// ```
    /// use brepartition::{Index, IndexSpec, QueryRequest};
    /// use brepartition::bregman::{DenseDataset, DivergenceKind};
    ///
    /// # fn main() -> brepartition::Result<()> {
    /// let rows: Vec<Vec<f64>> =
    ///     (0..32).map(|i| vec![1.0 + i as f64, 2.0 + (i % 7) as f64]).collect();
    /// let data = DenseDataset::from_rows(&rows).unwrap();
    /// let mut index =
    ///     Index::build(&IndexSpec::bbtree(DivergenceKind::SquaredEuclidean), &data)?;
    ///
    /// let id = index.insert(&[100.0, 100.0])?;
    /// assert_eq!(index.len(), 33);
    /// let hit = index.query(&QueryRequest::new(&[99.0, 99.0], 1))?;
    /// assert_eq!(hit.neighbors[0].0, id); // the insert is immediately searchable
    /// # Ok(())
    /// # }
    /// ```
    pub fn insert(&mut self, row: &[f64]) -> Result<PointId> {
        Ok(Arc::make_mut(&mut self.delta).insert(row)?)
    }

    /// Tombstone a live point (backend-resident or freshly inserted).
    ///
    /// Returns `Ok(true)` if the id was live, `Ok(false)` if it was
    /// already deleted or never issued — deletes are idempotent. The point
    /// stops appearing in query results immediately; its storage is
    /// reclaimed by the next [`Index::compact`].
    ///
    /// ```
    /// use brepartition::{Index, IndexSpec};
    /// use brepartition::bregman::{DenseDataset, DivergenceKind, PointId};
    ///
    /// # fn main() -> brepartition::Result<()> {
    /// let rows: Vec<Vec<f64>> =
    ///     (0..32).map(|i| vec![1.0 + i as f64, 2.0 + (i % 7) as f64]).collect();
    /// let data = DenseDataset::from_rows(&rows).unwrap();
    /// let mut index =
    ///     Index::build(&IndexSpec::bbtree(DivergenceKind::SquaredEuclidean), &data)?;
    ///
    /// assert_eq!(index.delete(PointId(7))?, true); // a backend point
    /// assert_eq!(index.delete(PointId(7))?, false); // idempotent
    /// assert_eq!(index.len(), 31);
    /// index.compact()?; // fold the tombstone into a rebuilt backend
    /// assert_eq!(index.len(), 31);
    /// # Ok(())
    /// # }
    /// ```
    pub fn delete(&mut self, id: PointId) -> Result<bool> {
        Ok(Arc::make_mut(&mut self.delta).delete(id))
    }

    /// Fold the delta into the backend: rebuild the index over the live
    /// set (through the same `(Method, DivergenceKind)` registry as
    /// [`Index::build`], under the same spec) and reset the delta.
    ///
    /// External ids survive compaction — the new delta carries the
    /// internal → external mapping and the id issue counter — so ids held
    /// by callers keep resolving to the same points. A no-op when nothing
    /// is pending. Compacting away every live point is an error (no
    /// backend can be built over an empty dataset); the index is left
    /// unchanged.
    pub fn compact(&mut self) -> Result<()> {
        if !self.delta.has_pending_writes() {
            return Ok(());
        }
        let dim = self.backend.dim();
        let base = self.backend.export_rows()?;
        let mut flat: Vec<f64> = Vec::with_capacity(self.delta.live_len() * dim);
        let mut ids: Vec<u32> = Vec::with_capacity(self.delta.live_len());
        for (internal, external) in self.delta.live_base_entries() {
            flat.extend_from_slice(base.row(internal));
            ids.push(external.0);
        }
        for (id, _phi, row) in self.delta.live_delta_rows() {
            flat.extend_from_slice(row);
            ids.push(id.0);
        }
        if ids.is_empty() {
            return Err(Error::Core(CoreError::EmptyDataset));
        }
        let live = DenseDataset::from_flat(dim, flat).map_err(CoreError::from)?;
        let entry = registry_entry(self.spec.method, self.spec.divergence)?;
        let backend = (entry.build)(&self.spec, &live)?;
        self.delta = Arc::new(
            DeltaSegment::rebased(self.spec.divergence, dim, ids, self.delta.next_id())
                .map_err(Error::Core)?,
        );
        self.backend = backend;
        Ok(())
    }

    /// The serving handle: an engine-ready backend over a **consistent
    /// snapshot** of this index (for callers composing their own
    /// [`QueryEngine`]).
    ///
    /// With no pending writes this is the bare backend; otherwise it is a
    /// [`DeltaOverlayBackend`] holding a frozen copy of the delta, so a
    /// batch served through it never observes a concurrent insert or
    /// delete mid-flight. Call again after mutating to pick up the new
    /// state.
    pub fn backend(&self) -> Arc<dyn SearchBackend> {
        if self.delta.is_trivial() {
            Arc::clone(&self.backend)
        } else {
            Arc::new(
                DeltaOverlayBackend::new(Arc::clone(&self.backend), Arc::clone(&self.delta))
                    .expect("the delta segment always matches the backend it was built against"),
            )
        }
    }

    /// A batch engine over a snapshot of this index with explicit
    /// configuration (see [`Index::backend`] for the snapshot semantics).
    pub fn engine(&self, config: EngineConfig) -> Result<QueryEngine> {
        Ok(QueryEngine::with_config(self.backend(), config)?)
    }

    /// Answer one query (fresh scratch state, no worker pool).
    pub fn query(&self, request: &QueryRequest<'_>) -> Result<QueryOutcome> {
        let backend = self.backend();
        let mut scratch = backend.new_scratch();
        let lowered = request.as_engine_request();
        let started = std::time::Instant::now();
        let answer =
            backend.knn_with_options(&mut scratch, lowered.query, lowered.k, &lowered.options)?;
        Ok(QueryOutcome {
            neighbors: answer.neighbors,
            candidates: answer.candidates,
            io: answer.io,
            latency_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Execute a batch across a default worker pool (machine parallelism,
    /// cold scratch). Use [`Index::engine`] for explicit control.
    pub fn run(&self, request: &Request<'_>) -> Result<BatchResult> {
        self.run_with(request, EngineConfig::default())
    }

    /// Execute a batch with explicit engine configuration.
    pub fn run_with(&self, request: &Request<'_>, config: EngineConfig) -> Result<BatchResult> {
        let engine = self.engine(config)?;
        Ok(engine.run_requests(&request.as_engine_requests())?)
    }
}

/// Reject directory entries no backend of the spec's method writes.
///
/// A foreign file in an index directory means the directory is not (only)
/// what its envelope claims — e.g. two indexes saved into one directory, or
/// stray artifacts from another tool. Opening such a directory would
/// silently ignore the foreign data today and mis-read it the day a backend
/// grows a new artifact with that name, so it is rejected descriptively up
/// front.
fn check_directory_entries(dir: &Path, spec: &IndexSpec, artifacts: &[&str]) -> Result<()> {
    for entry in std::fs::read_dir(dir).map_err(PersistError::from)? {
        let entry = entry.map_err(PersistError::from)?;
        let name = entry.file_name();
        let known = name
            .to_str()
            .is_some_and(|n| n == SPEC_FILE || n == DELTA_FILE || artifacts.contains(&n));
        if !known {
            return Err(Error::Mismatch {
                expected: format!(
                    "a {} index directory holding only {} (plus {SPEC_FILE} and {DELTA_FILE})",
                    spec.method.name(),
                    artifacts.join(", ")
                ),
                found: format!("foreign entry {:?} in {}", name, dir.display()),
            });
        }
    }
    Ok(())
}

/// Read and unseal the spec envelope of an index directory.
fn read_spec(dir: &Path) -> Result<IndexSpec> {
    let path = dir.join(SPEC_FILE);
    let bytes = std::fs::read(&path).map_err(|e| {
        Error::Persist(PersistError::Corrupt(format!(
            "index directory {} has no readable spec envelope ({SPEC_FILE}): {e}; \
             directories saved by backend-level save calls predate the \
             envelope — re-save them through Index::save",
            dir.display()
        )))
    })?;
    let (payload, version) = match unseal(&SPEC_MAGIC, SPEC_VERSION, &bytes) {
        Ok(payload) => (payload, SPEC_VERSION),
        Err(PersistError::UnsupportedVersion { found: LEGACY_SPEC_VERSION, .. }) => {
            (unseal(&SPEC_MAGIC, LEGACY_SPEC_VERSION, &bytes)?, LEGACY_SPEC_VERSION)
        }
        Err(e) => return Err(e.into()),
    };
    let mut r = ByteReader::new(payload);
    let spec = IndexSpec::read_from(&mut r, version)?;
    r.expect_end()?;
    Ok(spec)
}
