//! The [`Index`] façade: one spec-driven build/open/query API over all four
//! methods.
//!
//! # The registry
//!
//! Internally, every `(Method, DivergenceKind)` pair maps to one
//! `RegistryEntry` holding monomorphized `build` and `open` function
//! pointers. The entry is the *only* place that knows which concrete
//! backend type serves the pair; everything above it — [`Index::build`],
//! [`Index::open`], the engine, the bench harness — works with
//! `Arc<dyn SearchBackend>`. This replaces the per-method constructor
//! sprawl (`build_exact`, `bbtree_backend_for_kind`, …) with a single
//! lookup.
//!
//! # The spec envelope (self-describing directories)
//!
//! [`Index::save`] writes the backend's own artifacts plus [`SPEC_FILE`]: a
//! sealed envelope (magic [`SPEC_MAGIC`], FNV-1a checksummed, see
//! [`pagestore::format`]) holding the full [`IndexSpec`]. [`Index::open`]
//! reads that envelope first, so the caller never names a method or
//! divergence — the directory says what it holds — and a directory whose
//! artifacts disagree with its envelope (or that has no envelope at all),
//! or that contains entries no backend of the spec's method would write,
//! fails with a descriptive [`Error`] instead of a decode panic.
//!
//! # Online mutability (the concurrent delta layer)
//!
//! Every backend is built from a static snapshot, so writes are absorbed by
//! a [`DeltaSegment`] riding on the index — a real LSM: [`Index::insert`]
//! appends to the chain's small active generation (sealed generations are
//! immutable and shared by `Arc`), [`Index::delete`] tombstones, queries
//! merge the backend's kNN with an exact prepared-kernel scan of the chain
//! (tombstones filter both sides), and compaction folds the live set back
//! into a freshly built backend through the same registry as
//! [`Index::build`]. All mutators take `&self`: the index state lives
//! behind a short-held interior lock, clones of an `Index` are handles to
//! the *same* index, and writers never block readers — a serving snapshot
//! is a pair of `Arc` bumps plus a copy of the bounded active generation.
//!
//! Compaction runs in two modes. Explicit [`Index::compact`] folds the
//! delta on the spot (or, with background compaction enabled, requests a
//! rebuild from the worker and waits for it). With
//! [`background`](crate::CompactionSpec::background) enabled in the spec,
//! every mutation checks the configured debt ratios and past either
//! threshold schedules a rebuild on the index's dedicated worker thread:
//! the worker pins an epoch (backend + frozen delta frontier), rebuilds off
//! to the side while queries keep serving the old epoch, then swaps
//! atomically — rows inserted and tombstones placed *after* the frontier
//! are carried into the new epoch, so no write is ever lost to a rebuild.
//! Compacting an index whose live set is empty parks it (backend kept,
//! every base point tombstoned) instead of erroring, so a fully drained
//! index stays openable and writable.
//!
//! External ids are stable across compactions: the delta carries the
//! backend-internal → external id mapping, and an id, once issued, is
//! never reused. [`Index::save`] persists the delta as a sealed
//! [`DELTA_FILE`] log next to the spec envelope; [`Index::open`] replays it
//! (an absent log is an empty delta, so pre-mutability directories stay
//! readable, and the chain flattens to the original single-segment log
//! format on disk). Batch serving sees a *consistent snapshot per batch*:
//! the serving handle returned by [`Index::backend`] (and used by
//! [`Index::run`]) freezes the delta at construction, so writes become
//! visible at the next batch boundary, never in the middle of one.
//!
//! Serving a collection too large (or too recall-hungry) for one index is
//! the job of the sharded tier: [`ShardedIndex`](crate::ShardedIndex) owns
//! N of these `Index` instances and scatter-gathers over them, reusing the
//! envelope machinery here for its own `shards.meta` (each shard
//! subdirectory is a full, self-describing `Index` directory).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::Instant;

use bregman::{
    DecomposableBregman, DenseDataset, DivergenceKind, Exponential, GeneralizedI, ItakuraSaito,
    PointId, SquaredEuclidean,
};
pub use brepartition_core::delta::DELTA_FILE;
use brepartition_core::{BrePartitionIndex, CoreError, DeltaSegment};
use brepartition_engine::{
    BBTreeBackend, BatchResult, BrePartitionBackend, DeltaOverlayBackend, EngineConfig,
    QueryEngine, QueryOutcome, SearchBackend, VaFileBackend,
};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError};
use telemetry::{Counter, Gauge, Registry};

use crate::error::{Error, Result};
use crate::request::{QueryRequest, Request};
use crate::spec::{IndexSpec, Method};

/// Magic tag of the spec envelope ([`SPEC_FILE`]).
pub const SPEC_MAGIC: [u8; 8] = *b"BREPSPC1";

/// Format version of the spec envelope this build writes and reads.
///
/// Version 2 appended the `f32_candidates` flag byte; version 3 appends the
/// compaction policy (background flag plus the two debt ratios). Envelopes
/// of every earlier version remain readable; knobs they predate take their
/// defaults.
pub const SPEC_VERSION: u32 = 3;

/// Previous spec-envelope versions, still accepted by [`Index::open`].
pub const LEGACY_SPEC_VERSIONS: [u32; 2] = [2, 1];

/// File name of the spec envelope within an index directory.
pub const SPEC_FILE: &str = "spec.meta";

type BuildFn = fn(&IndexSpec, &DenseDataset) -> Result<Arc<dyn SearchBackend>>;
type OpenFn = fn(&IndexSpec, &Path) -> Result<Arc<dyn SearchBackend>>;

/// Files the BrePartition-family backends write into an index directory.
const BRE_ARTIFACTS: &[&str] =
    &[brepartition_core::persist::META_FILE, brepartition_core::persist::PAGES_FILE];
/// Files the BBT baseline writes into an index directory.
const BBT_ARTIFACTS: &[&str] =
    &[bbtree::disk::TREE_FILE, bbtree::disk::PAGES_FILE, bbtree::disk::PHI_FILE];
/// Files the VA-file baseline writes into an index directory.
const VAF_ARTIFACTS: &[&str] = &[vafile::search::META_FILE, vafile::search::PAGES_FILE];

/// One `(Method, DivergenceKind)` pair's constructors, plus the artifact
/// files its `save` path writes (the allowlist `Index::open` enforces —
/// kept next to the constructors so a backend growing a new artifact
/// cannot drift apart from the directory check).
struct RegistryEntry {
    method: Method,
    divergence: DivergenceKind,
    build: BuildFn,
    open: OpenFn,
    artifacts: &'static [&'static str],
}

/// Build a BrePartition-family backend (exact or approximate per the spec).
fn build_bre(spec: &IndexSpec, data: &DenseDataset) -> Result<Arc<dyn SearchBackend>> {
    let index = BrePartitionIndex::build(spec.divergence, data, &spec.brepartition_config())?;
    Ok(wrap_bre(spec, index))
}

/// Open a BrePartition-family backend, cross-checking the index envelope's
/// divergence against the spec envelope before the full restore.
fn open_bre(spec: &IndexSpec, dir: &Path) -> Result<Arc<dyn SearchBackend>> {
    let found = BrePartitionIndex::peek_kind(dir)?;
    if found != spec.divergence {
        return Err(Error::Mismatch {
            expected: format!(
                "a {} index under divergence {}",
                spec.method.name(),
                spec.divergence.short_name()
            ),
            found: format!("BrePartition artifacts under divergence {}", found.short_name()),
        });
    }
    Ok(wrap_bre(spec, BrePartitionIndex::open(dir)?))
}

fn wrap_bre(spec: &IndexSpec, index: BrePartitionIndex) -> Arc<dyn SearchBackend> {
    match spec.method {
        Method::Approximate => {
            Arc::new(BrePartitionBackend::approximate(index, spec.approximate_config()))
        }
        _ => Arc::new(BrePartitionBackend::exact(index)),
    }
}

/// Build a BBT baseline backend for divergence `B`.
fn build_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        BBTreeBackend::build(B::default(), data, spec.bbtree_config(), spec.store_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a BBT baseline backend for divergence `B`.
fn open_bbt<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // DiskBBTree::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        BBTreeBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("BBTree", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Build a VA-file baseline backend for divergence `B`.
fn build_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    data: &DenseDataset,
) -> Result<Arc<dyn SearchBackend>> {
    Ok(Arc::new(
        VaFileBackend::build(B::default(), data, spec.vafile_config())
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

/// Open a VA-file baseline backend for divergence `B`.
fn open_vaf<B: DecomposableBregman + Default + Send + Sync + 'static>(
    spec: &IndexSpec,
    dir: &Path,
) -> Result<Arc<dyn SearchBackend>> {
    // VaFile::open verifies the persisted divergence name itself.
    Ok(Arc::new(
        VaFileBackend::open(B::default(), dir)
            .map_err(|e| backend_open_error("VaFile", e))?
            .with_scratch_pool_pages(spec.storage.buffer_pool_pages),
    ))
}

fn backend_open_error(method: &str, e: brepartition_engine::EngineError) -> Error {
    Error::Persist(PersistError::Corrupt(format!("opening {method} artifacts failed: {e}")))
}

/// One registry row per divergence for a divergence-generic method.
macro_rules! per_divergence {
    ($method:expr, $build:ident, $open:ident, $artifacts:expr) => {
        [
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::SquaredEuclidean,
                build: $build::<SquaredEuclidean>,
                open: $open::<SquaredEuclidean>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::ItakuraSaito,
                build: $build::<ItakuraSaito>,
                open: $open::<ItakuraSaito>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::Exponential,
                build: $build::<Exponential>,
                open: $open::<Exponential>,
                artifacts: $artifacts,
            },
            RegistryEntry {
                method: $method,
                divergence: DivergenceKind::GeneralizedI,
                build: $build::<GeneralizedI>,
                open: $open::<GeneralizedI>,
                artifacts: $artifacts,
            },
        ]
    };
}

/// The registry. BrePartition methods dispatch on `DivergenceKind` inside
/// the core (one entry per divergence keeps the key uniform); the baselines
/// monomorphize per divergence here.
fn registry() -> [RegistryEntry; 16] {
    let bre = |method: Method| {
        DivergenceKind::ALL.map(|divergence| RegistryEntry {
            method,
            divergence,
            build: build_bre,
            open: open_bre,
            artifacts: BRE_ARTIFACTS,
        })
    };
    let [a0, a1, a2, a3] = bre(Method::BrePartition);
    let [b0, b1, b2, b3] = bre(Method::Approximate);
    let [c0, c1, c2, c3] = per_divergence!(Method::BBTree, build_bbt, open_bbt, BBT_ARTIFACTS);
    let [d0, d1, d2, d3] = per_divergence!(Method::VaFile, build_vaf, open_vaf, VAF_ARTIFACTS);
    [a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3, d0, d1, d2, d3]
}

/// Look up the registry entry for a `(Method, DivergenceKind)` key.
fn registry_entry(method: Method, divergence: DivergenceKind) -> Result<RegistryEntry> {
    registry().into_iter().find(|e| e.method == method && e.divergence == divergence).ok_or_else(
        || {
            Error::Spec(format!(
                "no registered backend for method {} over divergence {}",
                method.name(),
                divergence.short_name()
            ))
        },
    )
}

/// A ready-to-query kNN index: any [`Method`] over any [`DivergenceKind`],
/// behind one type.
///
/// ```no_run
/// use brepartition::{Index, IndexSpec, QueryRequest, Request};
/// use brepartition::bregman::{DenseDataset, DivergenceKind};
///
/// # fn main() -> brepartition::Result<()> {
/// let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
/// let data = DenseDataset::from_rows(&rows).unwrap();
/// let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito);
/// let index = Index::build(&spec, &data)?;
/// index.save("idx".as_ref())?;
///
/// let reopened = Index::open("idx".as_ref())?; // method + divergence from the envelope
/// let result = reopened.query(&QueryRequest::new(&rows[0], 1))?;
/// assert_eq!(result.neighbors.len(), 1);
/// let batch = reopened.run(&Request::uniform(&rows, 2))?;
/// assert_eq!(batch.outcomes.len(), 2);
/// # Ok(())
/// # }
/// ```
/// Cloning an `Index` is cheap and yields another **handle to the same
/// index**: clones share the backend, the delta chain and the compaction
/// worker, so a write through one handle is visible to queries through any
/// other (at the next batch boundary). This is what lets mutator threads
/// and query threads race the same index safely — every mutator takes
/// `&self`.
#[derive(Clone)]
pub struct Index {
    shared: Arc<IndexShared>,
}

/// The serving state of one epoch: the static backend and the delta chain
/// riding on it. Swapped wholesale (under the short state lock) when a
/// compaction lands.
struct EpochState {
    backend: Arc<dyn SearchBackend>,
    delta: DeltaSegment,
}

/// State shared by every handle (clone) of one [`Index`].
struct IndexShared {
    spec: IndexSpec,
    dim: usize,
    /// The epoch state. Held for O(1)-ish critical sections only: append a
    /// row, place a tombstone, clone the snapshot, swap the epoch — never
    /// across a backend build or a query.
    state: Mutex<EpochState>,
    /// Serializes compaction runs (worker and inline callers alike).
    /// Mutators and queries never take it, so a running rebuild blocks
    /// neither.
    compaction_lock: Mutex<()>,
    /// The lazily spawned background compaction worker.
    worker: Mutex<Option<Compactor>>,
    /// Epoch counter: bumped once per landed compaction swap.
    epoch: Arc<Counter>,
    /// Completed compactions (successful swaps, including parks).
    compactions: Arc<Counter>,
    /// Total nanoseconds spent rebuilding inside compactions.
    compaction_nanos: Arc<Counter>,
    /// Duration of the most recent compaction, in milliseconds.
    last_compaction_ms: Arc<Gauge>,
    /// Current delta-chain length (rows, live and dead) — the write debt a
    /// compaction would fold away.
    delta_debt_rows: Arc<Gauge>,
    /// Current tombstone count — the delete debt.
    tombstone_debt: Arc<Gauge>,
}

/// Handle to the background compaction worker thread.
struct Compactor {
    /// Requests: monotone tickets; the worker drains the queue and serves
    /// the highest ticket it saw with one rebuild.
    tx: mpsc::Sender<u64>,
    /// Ticket allocator.
    tickets: AtomicU64,
    /// Completion state the worker publishes and waiters block on.
    completion: Arc<Completion>,
    join: Option<std::thread::JoinHandle<()>>,
}

#[derive(Default)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompletionState {
    /// Highest ticket whose compaction run has finished.
    completed: u64,
    /// Error of the most recent run, if it failed (the index is unchanged
    /// then — queries keep serving the old epoch).
    last_error: Option<String>,
}

impl IndexShared {
    fn lock_state(&self) -> MutexGuard<'_, EpochState> {
        self.state.lock().expect("index state lock poisoned")
    }

    fn record_debt(&self, delta: &DeltaSegment) {
        self.delta_debt_rows.set(delta.delta_rows() as i64);
        self.tombstone_debt.set(delta.tombstone_count() as i64);
    }
}

impl Drop for IndexShared {
    fn drop(&mut self) {
        let compactor = match self.worker.get_mut() {
            Ok(slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(mut compactor) = compactor {
            // Dropping the sender ends the worker's receive loop.
            drop(compactor.tx);
            if let Some(join) = compactor.join.take() {
                // The last handle can be dropped *by* the worker itself (it
                // holds a temporary upgrade while compacting); a thread
                // must not join itself.
                if join.thread().id() != std::thread::current().id() {
                    let _ = join.join();
                }
            }
        }
    }
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.lock_state();
        f.debug_struct("Index")
            .field("spec", &self.shared.spec)
            .field("backend", &st.backend.name())
            .field("len", &st.delta.live_len())
            .field("dim", &self.shared.dim)
            .field("delta_rows", &st.delta.delta_rows())
            .field("tombstones", &st.delta.tombstone_count())
            .field("epoch", &self.shared.epoch.get())
            .finish()
    }
}

/// Whether a compaction over this delta state would change anything.
///
/// Nothing pending is the obvious no-op. A **parked** segment — live set
/// empty, chain drained, every base point tombstoned — is also a no-op: no
/// backend can be built over zero points, and parking again would produce
/// the identical state. Both cases must not bump the epoch or schedule
/// work; a delete of a never-issued or already-dead id leaves the segment
/// in exactly the state it was, so it also never makes this predicate flip.
fn compaction_is_noop(delta: &DeltaSegment) -> bool {
    if !delta.has_pending_writes() {
        return true;
    }
    delta.delta_rows() == 0
        && delta.base_tombstone_count() == delta.base_len()
        && delta.tombstone_count() == delta.base_tombstone_count()
}

/// Whether the delta's debt crosses the spec's background-compaction
/// thresholds.
fn over_threshold(spec: &IndexSpec, delta: &DeltaSegment) -> bool {
    if !spec.compaction.background || compaction_is_noop(delta) {
        return false;
    }
    let rows = delta.delta_rows() as f64;
    let tombstones = delta.tombstone_count() as f64;
    let base = delta.base_len().max(1) as f64;
    let live = delta.live_len().max(1) as f64;
    rows >= spec.compaction.max_delta_ratio * base
        || tombstones >= spec.compaction.max_tombstone_ratio * live
}

/// One compaction run: pin a frontier, rebuild off to the side, swap.
///
/// The frontier is a snapshot of the epoch state taken under the short
/// state lock (the active generation is sealed first, so the snapshot
/// shares every row with the live chain by reference). The rebuild — the
/// expensive part — runs with **no lock held**: mutators keep appending and
/// queries keep serving the old epoch. At swap time the state lock is
/// retaken briefly to reconcile everything that happened after the
/// frontier: rows with ids at or beyond the frontier's issue counter are
/// carried into the rebased segment verbatim (ids are monotone and never
/// reused, which is what makes this sound), and tombstones placed since the
/// frontier are re-applied. An empty live set parks the index instead of
/// erroring. Runs are serialized by `compaction_lock`.
fn compact_once(shared: &IndexShared) -> Result<()> {
    let _serialized = shared.compaction_lock.lock().expect("compaction lock poisoned");
    let started = Instant::now();
    let (backend, frontier) = {
        let mut st = shared.lock_state();
        if compaction_is_noop(&st.delta) {
            return Ok(());
        }
        st.delta.seal();
        (Arc::clone(&st.backend), st.delta.clone())
    };

    let dim = backend.dim();
    let base = backend.export_rows()?;
    let mut flat: Vec<f64> = Vec::with_capacity(frontier.live_len() * dim);
    let mut ids: Vec<u32> = Vec::with_capacity(frontier.live_len());
    for (internal, external) in frontier.live_base_entries() {
        flat.extend_from_slice(base.row(internal));
        ids.push(external.0);
    }
    for (id, _phi, row) in frontier.live_delta_rows() {
        flat.extend_from_slice(row);
        ids.push(id.0);
    }
    let (new_backend, template) = if ids.is_empty() {
        // Nothing live at the frontier: park. The old backend stays (fully
        // tombstoned), the chain is drained, the index remains writable.
        (None, frontier.parked())
    } else {
        let live = DenseDataset::from_flat(dim, flat).map_err(CoreError::from)?;
        let entry = registry_entry(shared.spec.method, shared.spec.divergence)?;
        let built = (entry.build)(&shared.spec, &live)?;
        let rebased = DeltaSegment::rebased(shared.spec.divergence, dim, ids, frontier.next_id())
            .map_err(Error::Core)?;
        (Some(built), rebased)
    };

    {
        let mut st = shared.lock_state();
        let mut next = template;
        for (id, row) in st.delta.delta_rows_from(frontier.next_id()) {
            next.carry_row(id, row).map_err(Error::Core)?;
        }
        for id in st.delta.tombstone_ids() {
            if !frontier.is_tombstoned(PointId(id)) {
                next.delete(PointId(id));
            }
        }
        if let Some(backend) = new_backend {
            st.backend = backend;
        }
        st.delta = next;
        shared.record_debt(&st.delta);
        shared.epoch.inc();
    }
    let elapsed = started.elapsed();
    shared.compactions.inc();
    shared.compaction_nanos.add(elapsed.as_nanos() as u64);
    shared.last_compaction_ms.set(elapsed.as_millis() as i64);
    Ok(())
}

/// The background worker's receive loop: drain queued tickets, serve the
/// highest with one rebuild, publish completion. Exits when every `Index`
/// handle is gone (the sender lives in `IndexShared`, so dropping the last
/// handle closes the channel).
fn compaction_worker(
    shared: Weak<IndexShared>,
    rx: mpsc::Receiver<u64>,
    completion: Arc<Completion>,
) {
    while let Ok(first) = rx.recv() {
        let mut ticket = first;
        while let Ok(more) = rx.try_recv() {
            ticket = ticket.max(more);
        }
        let error = match shared.upgrade() {
            Some(shared) => compact_once(&shared).err().map(|e| e.to_string()),
            None => break,
        };
        let mut st = completion.state.lock().expect("compaction completion lock poisoned");
        st.completed = st.completed.max(ticket);
        st.last_error = error;
        completion.cv.notify_all();
    }
}

impl Index {
    /// Build an index over `data` as the spec describes.
    ///
    /// The spec is validated first; an invalid knob returns
    /// [`Error::Spec`] before any work happens.
    pub fn build(spec: &IndexSpec, data: &DenseDataset) -> Result<Index> {
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        let backend = (entry.build)(spec, data)?;
        let delta = DeltaSegment::new(spec.divergence, backend.dim(), backend.len())
            .map_err(Error::Core)?;
        Ok(Index::from_parts(*spec, backend, delta))
    }

    /// Assemble the shared state around a freshly built or opened backend.
    fn from_parts(spec: IndexSpec, backend: Arc<dyn SearchBackend>, delta: DeltaSegment) -> Index {
        let dim = backend.dim();
        let shared = IndexShared {
            spec,
            dim,
            state: Mutex::new(EpochState { backend, delta }),
            compaction_lock: Mutex::new(()),
            worker: Mutex::new(None),
            epoch: Arc::new(Counter::new()),
            compactions: Arc::new(Counter::new()),
            compaction_nanos: Arc::new(Counter::new()),
            last_compaction_ms: Arc::new(Gauge::new()),
            delta_debt_rows: Arc::new(Gauge::new()),
            tombstone_debt: Arc::new(Gauge::new()),
        };
        {
            let st = shared.lock_state();
            shared.record_debt(&st.delta);
        }
        Index { shared: Arc::new(shared) }
    }

    /// Open an index directory written by [`Index::save`].
    ///
    /// The directory is self-describing: the spec envelope ([`SPEC_FILE`])
    /// names the method and divergence, so no caller-side dispatch is
    /// needed. A directory without an envelope (e.g. one written by a
    /// backend-level `save` call), whose artifacts disagree with its
    /// envelope, or that holds entries no backend of the spec's method
    /// writes (a foreign file dropped into the directory), fails with a
    /// descriptive error. The delta log ([`DELTA_FILE`]) is replayed if
    /// present; its absence means an empty delta, so directories written
    /// before the mutability layer stay readable.
    pub fn open(dir: &Path) -> Result<Index> {
        let spec = read_spec(dir)?;
        // The envelope itself round-trips through the same validation as a
        // caller-constructed spec.
        spec.validate()?;
        let entry = registry_entry(spec.method, spec.divergence)?;
        check_directory_entries(dir, &spec, entry.artifacts)?;
        let backend = (entry.open)(&spec, dir)?;
        let delta = match std::fs::read(dir.join(DELTA_FILE)) {
            Ok(bytes) => {
                DeltaSegment::from_log_bytes(&bytes, spec.divergence, backend.dim(), backend.len())
                    .map_err(Error::Core)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                DeltaSegment::new(spec.divergence, backend.dim(), backend.len())
                    .map_err(Error::Core)?
            }
            Err(e) => return Err(Error::Persist(PersistError::Io(e))),
        };
        Ok(Index::from_parts(spec, backend, delta))
    }

    /// Persist the index (backend artifacts + spec envelope + delta log)
    /// to `dir`, creating it if needed.
    ///
    /// The delta log captures pending inserts and tombstones verbatim —
    /// saving does *not* compact, so a reopened index resumes with the
    /// exact same live set, id mapping and issue counter. Saving snapshots
    /// the index consistently even while writers or a background compaction
    /// are running; the directory reflects one epoch.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let (backend, delta) = self.snapshot();
        std::fs::create_dir_all(dir).map_err(PersistError::from)?;
        backend.save(dir)?;
        let mut w = ByteWriter::new();
        self.shared.spec.write_to(&mut w);
        std::fs::write(dir.join(SPEC_FILE), seal(&SPEC_MAGIC, SPEC_VERSION, &w.into_vec()))
            .map_err(PersistError::from)?;
        std::fs::write(dir.join(DELTA_FILE), delta.to_log_bytes()).map_err(PersistError::from)?;
        Ok(())
    }

    /// One consistent `(backend, delta)` pair, taken under the short state
    /// lock. This is the epoch handoff every reader goes through.
    fn snapshot(&self) -> (Arc<dyn SearchBackend>, DeltaSegment) {
        let st = self.shared.lock_state();
        (Arc::clone(&st.backend), st.delta.clone())
    }

    /// The spec this index was built (or reopened) with.
    pub fn spec(&self) -> &IndexSpec {
        &self.shared.spec
    }

    /// The search method.
    pub fn method(&self) -> Method {
        self.shared.spec.method
    }

    /// The divergence queries are answered under.
    pub fn divergence(&self) -> DivergenceKind {
        self.shared.spec.divergence
    }

    /// Number of **live** points: backend points minus tombstones plus
    /// live delta rows.
    pub fn len(&self) -> usize {
        self.shared.lock_state().delta.live_len()
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// A point-in-time snapshot of the mutable delta layer (inspection
    /// only; use [`Index::insert`] / [`Index::delete`] / [`Index::compact`]
    /// to change it). Cheap: sealed generations are shared by reference.
    pub fn delta(&self) -> DeltaSegment {
        self.shared.lock_state().delta.clone()
    }

    /// How many compaction swaps have landed on this index (each bumps the
    /// serving epoch once).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.get()
    }

    /// Completed compactions (successful rebuild-and-swap runs, parks
    /// included).
    pub fn compactions(&self) -> u64 {
        self.shared.compactions.get()
    }

    /// Total time spent inside compaction rebuilds so far, in nanoseconds.
    pub fn compaction_nanos(&self) -> u64 {
        self.shared.compaction_nanos.get()
    }

    /// Register this index's compaction telemetry in `registry` under
    /// `{prefix}.compactions`, `{prefix}.compaction_nanos`,
    /// `{prefix}.epoch`, `{prefix}.last_compaction_ms`,
    /// `{prefix}.delta_debt_rows` and `{prefix}.tombstone_debt`.
    pub fn bind_telemetry(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(
            &format!("{prefix}.compactions"),
            Arc::clone(&self.shared.compactions),
        );
        registry.register_counter(
            &format!("{prefix}.compaction_nanos"),
            Arc::clone(&self.shared.compaction_nanos),
        );
        registry.register_counter(&format!("{prefix}.epoch"), Arc::clone(&self.shared.epoch));
        registry.register_gauge(
            &format!("{prefix}.last_compaction_ms"),
            Arc::clone(&self.shared.last_compaction_ms),
        );
        registry.register_gauge(
            &format!("{prefix}.delta_debt_rows"),
            Arc::clone(&self.shared.delta_debt_rows),
        );
        registry.register_gauge(
            &format!("{prefix}.tombstone_debt"),
            Arc::clone(&self.shared.tombstone_debt),
        );
    }

    /// Append one point, returning its stable external id.
    ///
    /// The write lands in the delta chain's active generation — no backend
    /// rebuild, no reader blocked — and is visible to every query and batch
    /// issued *after* this call (batches already running keep their
    /// snapshot). The row must match the index's dimensionality and the
    /// divergence's domain. With background compaction enabled, crossing a
    /// debt threshold schedules a rebuild on the worker; the insert itself
    /// returns immediately either way.
    ///
    /// ```
    /// use brepartition::{Index, IndexSpec, QueryRequest};
    /// use brepartition::bregman::{DenseDataset, DivergenceKind};
    ///
    /// # fn main() -> brepartition::Result<()> {
    /// let rows: Vec<Vec<f64>> =
    ///     (0..32).map(|i| vec![1.0 + i as f64, 2.0 + (i % 7) as f64]).collect();
    /// let data = DenseDataset::from_rows(&rows).unwrap();
    /// let index =
    ///     Index::build(&IndexSpec::bbtree(DivergenceKind::SquaredEuclidean), &data)?;
    ///
    /// let id = index.insert(&[100.0, 100.0])?;
    /// assert_eq!(index.len(), 33);
    /// let hit = index.query(&QueryRequest::new(&[99.0, 99.0], 1))?;
    /// assert_eq!(hit.neighbors[0].0, id); // the insert is immediately searchable
    /// # Ok(())
    /// # }
    /// ```
    pub fn insert(&self, row: &[f64]) -> Result<PointId> {
        let (id, trigger) = {
            let mut st = self.shared.lock_state();
            let id = st.delta.insert(row)?;
            self.shared.record_debt(&st.delta);
            (id, over_threshold(&self.shared.spec, &st.delta))
        };
        if trigger {
            self.request_compaction();
        }
        Ok(id)
    }

    /// Tombstone a live point (backend-resident or freshly inserted).
    ///
    /// Returns `Ok(true)` if the id was live, `Ok(false)` if it was
    /// already deleted or never issued — deletes are idempotent, and an
    /// idempotent delete leaves the index untouched: it does not dirty the
    /// delta and never schedules a background rebuild. The point stops
    /// appearing in query results immediately; its storage is reclaimed by
    /// the next compaction.
    ///
    /// ```
    /// use brepartition::{Index, IndexSpec};
    /// use brepartition::bregman::{DenseDataset, DivergenceKind, PointId};
    ///
    /// # fn main() -> brepartition::Result<()> {
    /// let rows: Vec<Vec<f64>> =
    ///     (0..32).map(|i| vec![1.0 + i as f64, 2.0 + (i % 7) as f64]).collect();
    /// let data = DenseDataset::from_rows(&rows).unwrap();
    /// let index =
    ///     Index::build(&IndexSpec::bbtree(DivergenceKind::SquaredEuclidean), &data)?;
    ///
    /// assert_eq!(index.delete(PointId(7))?, true); // a backend point
    /// assert_eq!(index.delete(PointId(7))?, false); // idempotent
    /// assert_eq!(index.len(), 31);
    /// index.compact()?; // fold the tombstone into a rebuilt backend
    /// assert_eq!(index.len(), 31);
    /// # Ok(())
    /// # }
    /// ```
    pub fn delete(&self, id: PointId) -> Result<bool> {
        let (was_live, trigger) = {
            let mut st = self.shared.lock_state();
            let was_live = st.delta.delete(id);
            if was_live {
                self.shared.record_debt(&st.delta);
            }
            (was_live, was_live && over_threshold(&self.shared.spec, &st.delta))
        };
        if trigger {
            self.request_compaction();
        }
        Ok(was_live)
    }

    /// Fold the delta into the backend: rebuild the index over the live
    /// set (through the same `(Method, DivergenceKind)` registry as
    /// [`Index::build`], under the same spec) and reset the delta.
    ///
    /// External ids survive compaction — the new delta carries the
    /// internal → external mapping and the id issue counter — so ids held
    /// by callers keep resolving to the same points. A no-op when nothing
    /// is pending. Compacting away every live point **parks** the index
    /// (the old backend stays, fully tombstoned; the index remains
    /// queryable, writable and saveable) instead of erroring — no backend
    /// can be built over an empty dataset, but an empty index is not a
    /// broken one.
    ///
    /// With background compaction enabled this is *request + wait*: the
    /// rebuild runs on the worker thread (concurrent callers coalesce onto
    /// one run) and this call blocks until a run covering it finishes,
    /// propagating its error if it failed. Queries and writers are never
    /// blocked by the rebuild either way.
    pub fn compact(&self) -> Result<()> {
        {
            let st = self.shared.lock_state();
            if compaction_is_noop(&st.delta) {
                return Ok(());
            }
        }
        if self.shared.spec.compaction.background {
            let waited = self
                .with_compactor(|c| {
                    let ticket = c.tickets.fetch_add(1, Ordering::Relaxed) + 1;
                    c.tx.send(ticket).ok().map(|()| (Arc::clone(&c.completion), ticket))
                })
                .flatten();
            if let Some((completion, ticket)) = waited {
                let mut st = completion.state.lock().expect("compaction completion lock poisoned");
                while st.completed < ticket {
                    st = completion.cv.wait(st).expect("compaction completion lock poisoned");
                }
                return match &st.last_error {
                    Some(message) => Err(Error::Compaction(message.clone())),
                    None => Ok(()),
                };
            }
            // Worker unavailable (spawn failed or channel closed): fall
            // through to the inline path below.
        }
        compact_once(&self.shared)
    }

    /// Schedule a background compaction without waiting (the trigger path
    /// of [`Index::insert`] / [`Index::delete`]). Requests coalesce in the
    /// worker's queue; failures surface via the next explicit
    /// [`Index::compact`].
    fn request_compaction(&self) {
        self.with_compactor(|c| {
            let ticket = c.tickets.fetch_add(1, Ordering::Relaxed) + 1;
            let _ = c.tx.send(ticket);
        });
    }

    /// Run `f` against the background compactor, spawning the worker thread
    /// on first use. Returns `None` if the worker cannot be spawned —
    /// callers then compact inline instead.
    fn with_compactor<R>(&self, f: impl FnOnce(&Compactor) -> R) -> Option<R> {
        let mut guard = self.shared.worker.lock().expect("compaction worker lock poisoned");
        if guard.is_none() {
            let (tx, rx) = mpsc::channel();
            let completion = Arc::new(Completion::default());
            let worker_completion = Arc::clone(&completion);
            // The worker holds a Weak handle: it must not keep the index
            // alive, or the channel would never close and the thread never
            // exit.
            let weak = Arc::downgrade(&self.shared);
            let spawned = std::thread::Builder::new()
                .name("brepartition-compactor".to_string())
                .spawn(move || compaction_worker(weak, rx, worker_completion));
            match spawned {
                Ok(join) => {
                    *guard = Some(Compactor {
                        tx,
                        tickets: AtomicU64::new(0),
                        completion,
                        join: Some(join),
                    });
                }
                Err(_) => return None,
            }
        }
        guard.as_ref().map(f)
    }

    /// The serving handle: an engine-ready backend over a **consistent
    /// snapshot** of this index (for callers composing their own
    /// [`QueryEngine`]).
    ///
    /// With no pending writes this is the bare backend; otherwise it is a
    /// [`DeltaOverlayBackend`] holding a frozen copy of the delta chain, so
    /// a batch served through it never observes a concurrent insert,
    /// delete or compaction swap mid-flight. Call again after mutating to
    /// pick up the new state. Taking the snapshot is an epoch handoff: two
    /// `Arc` bumps plus a copy of the bounded active generation, regardless
    /// of how much history the chain holds.
    pub fn backend(&self) -> Arc<dyn SearchBackend> {
        let (backend, delta) = self.snapshot();
        if delta.is_trivial() {
            backend
        } else {
            Arc::new(
                DeltaOverlayBackend::new(backend, Arc::new(delta))
                    .expect("the delta segment always matches the backend it was built against"),
            )
        }
    }

    /// A batch engine over a snapshot of this index with explicit
    /// configuration (see [`Index::backend`] for the snapshot semantics).
    pub fn engine(&self, config: EngineConfig) -> Result<QueryEngine> {
        Ok(QueryEngine::with_config(self.backend(), config)?)
    }

    /// Answer one query (fresh scratch state, no worker pool).
    pub fn query(&self, request: &QueryRequest<'_>) -> Result<QueryOutcome> {
        let backend = self.backend();
        let mut scratch = backend.new_scratch();
        let lowered = request.as_engine_request();
        let started = std::time::Instant::now();
        let answer =
            backend.knn_with_options(&mut scratch, lowered.query, lowered.k, &lowered.options)?;
        Ok(QueryOutcome {
            neighbors: answer.neighbors,
            candidates: answer.candidates,
            io: answer.io,
            latency_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Execute a batch across a default worker pool (machine parallelism,
    /// cold scratch). Use [`Index::engine`] for explicit control.
    pub fn run(&self, request: &Request<'_>) -> Result<BatchResult> {
        self.run_with(request, EngineConfig::default())
    }

    /// Execute a batch with explicit engine configuration.
    pub fn run_with(&self, request: &Request<'_>, config: EngineConfig) -> Result<BatchResult> {
        let engine = self.engine(config)?;
        Ok(engine.run_requests(&request.as_engine_requests())?)
    }
}

/// Reject directory entries no backend of the spec's method writes.
///
/// A foreign file in an index directory means the directory is not (only)
/// what its envelope claims — e.g. two indexes saved into one directory, or
/// stray artifacts from another tool. Opening such a directory would
/// silently ignore the foreign data today and mis-read it the day a backend
/// grows a new artifact with that name, so it is rejected descriptively up
/// front.
fn check_directory_entries(dir: &Path, spec: &IndexSpec, artifacts: &[&str]) -> Result<()> {
    for entry in std::fs::read_dir(dir).map_err(PersistError::from)? {
        let entry = entry.map_err(PersistError::from)?;
        let name = entry.file_name();
        let known = name
            .to_str()
            .is_some_and(|n| n == SPEC_FILE || n == DELTA_FILE || artifacts.contains(&n));
        if !known {
            return Err(Error::Mismatch {
                expected: format!(
                    "a {} index directory holding only {} (plus {SPEC_FILE} and {DELTA_FILE})",
                    spec.method.name(),
                    artifacts.join(", ")
                ),
                found: format!("foreign entry {:?} in {}", name, dir.display()),
            });
        }
    }
    Ok(())
}

/// Read and unseal the spec envelope of an index directory.
fn read_spec(dir: &Path) -> Result<IndexSpec> {
    let path = dir.join(SPEC_FILE);
    let bytes = std::fs::read(&path).map_err(|e| {
        Error::Persist(PersistError::Corrupt(format!(
            "index directory {} has no readable spec envelope ({SPEC_FILE}): {e}; \
             directories saved by backend-level save calls predate the \
             envelope — re-save them through Index::save",
            dir.display()
        )))
    })?;
    let (payload, version) = match unseal(&SPEC_MAGIC, SPEC_VERSION, &bytes) {
        Ok(payload) => (payload, SPEC_VERSION),
        Err(PersistError::UnsupportedVersion { found, .. })
            if LEGACY_SPEC_VERSIONS.contains(&found) =>
        {
            (unseal(&SPEC_MAGIC, found, &bytes)?, found)
        }
        Err(e) => return Err(e.into()),
    };
    let mut r = ByteReader::new(payload);
    let spec = IndexSpec::read_from(&mut r, version)?;
    r.expect_end()?;
    Ok(spec)
}
