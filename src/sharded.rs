//! The sharded serving tier: [`ShardedIndex`] — N per-shard [`Index`]
//! instances behind one [`ShardSpec`], queried scatter-gather.
//!
//! # Two modes, one subsystem
//!
//! * **Capacity mode** ([`ShardMode::Capacity`]) routes every point to
//!   exactly one shard by a deterministic hash of its external id
//!   ([`ShardSpec::route`]), so N shards hold N-th slices of the
//!   collection. Queries fan out to every shard and the per-shard top-k
//!   lists are merged by the engine's canonical `(distance, id)` order —
//!   the same discipline the delta overlay uses — which makes the merged
//!   result **bit-identical** to an equivalent unsharded [`Index`] for the
//!   exact methods: shard boundaries change which partition trees exist,
//!   never the exact divergence a refined candidate is scored with.
//! * **Forest mode** ([`ShardMode::Forest`]) builds N *randomized replicas*
//!   of the full collection, each constructed under its own derived RNG
//!   seed (threaded through [`IndexSpec::seed`]). Replicas return
//!   overlapping ids, so the gather deduplicates before truncating to k.
//!   One replica missing a true neighbor is covered by another finding it:
//!   merged recall is never below any single replica's, which is the point
//!   of the mode for the approximate methods (ABP, VAF).
//!
//! # Global ids
//!
//! The sharded index owns the external id space. At build, point `i` of the
//! dataset gets global id `i`; [`ShardedIndex::insert`] issues the next
//! global id and routes by it. In capacity mode each shard's inner
//! [`Index`] issues its *own* dense local ids; because globals are issued
//! monotonically and never reused, shard-local ids map to globals through a
//! sorted per-shard table that is fully derivable from the issue counter —
//! nothing but the counter needs persisting, and lookups are binary
//! searches. In forest mode every replica sees every operation, so local
//! and global ids coincide.
//!
//! # Directory layout
//!
//! [`ShardedIndex::save`] writes a self-describing directory:
//!
//! ```text
//! dir/
//!   shards.meta    sealed envelope: ShardSpec + id issue counter
//!   shard0000/     a full Index directory (spec.meta, artifacts, delta.log)
//!   shard0001/
//!   ...
//! ```
//!
//! [`ShardedIndex::open`] reads the envelope, rejects foreign directory
//! entries, opens every shard through [`Index::open`] (each shard directory
//! re-validates itself), and cross-checks each shard's spec and id counter
//! against what the envelope implies — a shard directory swapped in from
//! another index fails descriptively instead of serving wrong ids.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use bregman::{DenseDataset, PointId};
use brepartition_core::CoreError;
use brepartition_engine::{
    merge_neighbor_lists, merge_shard_outcomes, recommended_pool_threads, BatchResult,
    FanoutPolicy, FaultInjector, FaultPlan, FaultState, QueryOutcome, SearchBackend, ShardFailure,
    ShardHealth, ShardedEngine, ThroughputReport,
};
use pagestore::format::{seal, unseal, ByteReader, ByteWriter, PersistError, PersistResult};
use telemetry::{Counter, Registry};

use crate::error::{Error, Result};
use crate::index::Index;
use crate::request::{QueryRequest, Request};
use crate::spec::IndexSpec;

/// Magic tag of the shard envelope ([`SHARDS_FILE`]).
pub const SHARDS_MAGIC: [u8; 8] = *b"BREPSHD1";

/// Format version of the shard envelope this build writes and reads.
///
/// Shard-envelope versions track spec-envelope versions 1:1. Version 2
/// added the `f32_candidates` flag byte to the embedded [`IndexSpec`]
/// payload; version 3 added the compaction policy
/// ([`CompactionSpec`](crate::CompactionSpec)). Older envelopes remain
/// readable; missing fields take their defaults.
pub const SHARDS_VERSION: u32 = 3;

/// Previous shard-envelope versions, still accepted on open.
pub const LEGACY_SHARDS_VERSIONS: [u32; 2] = [2, 1];

/// File name of the shard envelope within a sharded index directory.
pub const SHARDS_FILE: &str = "shards.meta";

/// Upper bound on the shard count (a sanity rail, not a tuning target).
pub const MAX_SHARDS: usize = 1024;

/// How a [`ShardedIndex`] distributes points across its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ShardMode {
    /// Disjoint slices: each point lives on exactly one shard, chosen by a
    /// deterministic hash of its external id. Linear capacity scaling;
    /// results bit-identical to an unsharded index for exact methods.
    Capacity,
    /// Randomized replicas: every shard holds the full collection, built
    /// under its own RNG seed; merged top-k trades memory for recall on
    /// the approximate methods.
    Forest,
}

impl ShardMode {
    /// Human-readable mode name (`capacity` / `forest`).
    pub fn name(&self) -> &'static str {
        match self {
            ShardMode::Capacity => "capacity",
            ShardMode::Forest => "forest",
        }
    }

    /// Stable on-disk tag of the mode (shard-envelope format).
    pub(crate) fn tag(&self) -> u8 {
        match self {
            ShardMode::Capacity => 0,
            ShardMode::Forest => 1,
        }
    }

    /// Inverse of [`ShardMode::tag`].
    pub(crate) fn from_tag(tag: u8) -> PersistResult<ShardMode> {
        Ok(match tag {
            0 => ShardMode::Capacity,
            1 => ShardMode::Forest,
            other => return Err(PersistError::Corrupt(format!("unknown shard-mode tag {other}"))),
        })
    }
}

impl std::fmt::Display for ShardMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative description of one sharded index: a per-shard
/// [`IndexSpec`] plus the shard count and [`ShardMode`].
///
/// ```
/// use brepartition::prelude::*;
///
/// let base = IndexSpec::bbtree(DivergenceKind::SquaredEuclidean).with_page_size(4096);
/// let spec = ShardSpec::capacity(base, 3);
/// assert_eq!(spec.shards, 3);
/// assert_eq!(spec.mode, ShardMode::Capacity);
/// assert!(spec.validate().is_ok());
///
/// // Forest replicas build under derived, pairwise-distinct seeds.
/// let forest = ShardSpec::forest(base, 2);
/// assert_ne!(forest.shard_spec(0).seed, forest.shard_spec(1).seed);
/// // Capacity shards share the base spec verbatim.
/// assert_eq!(spec.shard_spec(0), base);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// The spec every shard's inner index is built from. In forest mode
    /// each shard gets a derived seed; every other knob is shared.
    pub base: IndexSpec,
    /// Number of shards (at least 1, at most [`MAX_SHARDS`]).
    pub shards: usize,
    /// Placement mode: disjoint capacity slices or randomized replicas.
    pub mode: ShardMode,
}

impl ShardSpec {
    /// A capacity-mode spec: `shards` disjoint slices of `base`.
    pub fn capacity(base: IndexSpec, shards: usize) -> Self {
        ShardSpec { base, shards, mode: ShardMode::Capacity }
    }

    /// A forest-mode spec: `shards` randomized replicas of `base`.
    pub fn forest(base: IndexSpec, shards: usize) -> Self {
        ShardSpec { base, shards, mode: ShardMode::Forest }
    }

    /// Check the spec for contradictions (shard count bounds plus the full
    /// base-spec validation) before anything is built.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::Spec("a sharded index needs at least one shard".to_string()));
        }
        if self.shards > MAX_SHARDS {
            return Err(Error::Spec(format!(
                "shard count {} exceeds the maximum of {MAX_SHARDS}",
                self.shards
            )));
        }
        self.base.validate()
    }

    /// The spec shard `shard`'s inner index is built from: the base spec in
    /// capacity mode, the base spec under a derived per-replica seed in
    /// forest mode.
    pub fn shard_spec(&self, shard: usize) -> IndexSpec {
        match self.mode {
            ShardMode::Capacity => self.base,
            ShardMode::Forest => self.base.with_seed(replica_seed(self.base.seed, shard)),
        }
    }

    /// The home shard of external id `id` in capacity mode: a deterministic
    /// hash (SplitMix64) of the id, modulo the shard count. Pure and
    /// platform-independent, so placement never depends on insertion order
    /// or machine.
    pub fn route(&self, id: PointId) -> usize {
        (splitmix64(u64::from(id.0)) % self.shards as u64) as usize
    }

    /// Serialize into a shard-envelope payload (stable format).
    pub(crate) fn write_to(&self, w: &mut ByteWriter) {
        self.base.write_to(w);
        w.put_u8(self.mode.tag());
        w.put_usize(self.shards);
    }

    /// Inverse of [`ShardSpec::write_to`]. `spec_version` is the
    /// spec-envelope version of the embedded [`IndexSpec`] payload
    /// (shard-envelope versions track spec-envelope versions 1:1).
    pub(crate) fn read_from(r: &mut ByteReader<'_>, spec_version: u32) -> PersistResult<ShardSpec> {
        let base = IndexSpec::read_from(r, spec_version)?;
        let mode = ShardMode::from_tag(r.take_u8()?)?;
        let shards = r.take_usize()?;
        Ok(ShardSpec { base, shards, mode })
    }
}

/// SplitMix64: the routing hash and the seed-derivation mixer. Fixed
/// constants, no platform dependence.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive replica `shard`'s construction seed from the base seed. Distinct
/// per shard (that is the whole point of forest mode) and stable across
/// save/open, so a reopened shard can be validated against its spec.
fn replica_seed(base: u64, shard: usize) -> u64 {
    splitmix64(base ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Subdirectory name of shard `shard` within a sharded index directory.
fn shard_dir_name(shard: usize) -> String {
    format!("shard{shard:04}")
}

/// Inverse of [`shard_dir_name`] (used by the foreign-entry check).
fn parse_shard_dir(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard")?;
    if digits.len() != 4 {
        return None;
    }
    digits.parse().ok()
}

/// Availability of one fault-tolerant sharded batch
/// ([`ShardedIndex::run_with_policy`]): either every shard answered, or the
/// result is explicitly flagged with what was lost — a degraded or partial
/// answer is never silently complete.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Outcome {
    /// Every shard answered; the results are exactly what
    /// [`ShardedIndex::run_with_budget`] would have returned.
    Full,
    /// Forest mode with some replicas down: the merge covers whatever
    /// replicas answered. Each surviving replica independently holds the
    /// full collection, so the merged recall is still at least
    /// `recall_floor`.
    Degraded {
        /// Replicas whose answers were merged.
        shards_answered: usize,
        /// Replicas that failed (after retries / breaker skips).
        shards_failed: usize,
        /// Lower bound on the merged recall: `1 − (1 − p)^answered` where
        /// `p` is one replica's per-neighbor guarantee (the spec's
        /// probability for the approximate method, 1.0 for exact methods).
        recall_floor: f64,
    },
    /// Capacity mode with some slices down and the request opted in via
    /// [`Request::allow_partial`](crate::Request::allow_partial): the
    /// results cover only the surviving shards' disjoint slices.
    Partial {
        /// Slices whose answers were merged.
        shards_answered: usize,
        /// Slices that failed (after retries / breaker skips).
        shards_failed: usize,
        /// Fraction of the live id space on the failed slices — the share
        /// of the collection the answer never looked at.
        unreached_fraction: f64,
    },
}

impl Outcome {
    /// Whether every shard answered.
    pub fn is_full(&self) -> bool {
        matches!(self, Outcome::Full)
    }
}

/// The result of a fault-tolerant sharded batch
/// ([`ShardedIndex::run_with_policy`]): merged per-query outcomes plus the
/// batch's [`Outcome`] flag and per-shard failure detail.
#[derive(Debug, Clone)]
pub struct ResilientBatch {
    /// One merged outcome per query, in submission order (over the shards
    /// that answered).
    pub outcomes: Vec<QueryOutcome>,
    /// Aggregate throughput and latency over the merged outcomes.
    pub report: ThroughputReport,
    /// Whether — and how — the batch degraded.
    pub availability: Outcome,
    /// Per-shard failure detail, `None` for shards that answered.
    pub shard_failures: Vec<Option<ShardFailure>>,
}

/// N per-shard [`Index`] instances served as one index: scatter-gather
/// queries, routed writes, per-shard compaction, and a self-describing
/// sharded directory. See the [module docs](crate::sharded) for the mode
/// semantics and consistency guarantees.
///
/// ```
/// use brepartition::prelude::*;
///
/// # fn main() -> brepartition::Result<()> {
/// let rows: Vec<Vec<f64>> =
///     (0..48).map(|i| vec![1.0 + i as f64, 2.0 + (i % 7) as f64]).collect();
/// let data = DenseDataset::from_rows(&rows).unwrap();
/// let spec = ShardSpec::capacity(IndexSpec::bbtree(DivergenceKind::SquaredEuclidean), 3);
/// let sharded = ShardedIndex::build(&spec, &data)?;
/// assert_eq!(sharded.len(), 48);
///
/// // Bit-identical to the unsharded index for exact methods.
/// let plain = Index::build(&spec.base, &data)?;
/// let q = [10.0, 4.0];
/// assert_eq!(
///     sharded.query(&QueryRequest::new(&q, 5))?.neighbors,
///     plain.query(&QueryRequest::new(&q, 5))?.neighbors,
/// );
///
/// // Writes route to the owning shard; ids are global and stable.
/// let id = sharded.insert(&[100.0, 100.0])?;
/// assert_eq!(sharded.query(&QueryRequest::new(&[99.0, 99.0], 1))?.neighbors[0].0, id);
/// assert!(sharded.delete(PointId(7))?);
/// sharded.compact()?;
/// assert_eq!(sharded.len(), 48);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ShardedIndex {
    spec: ShardSpec,
    shards: Vec<Index>,
    /// The routing state writers mutate: the global id counter plus the
    /// capacity-mode local→global tables. Behind one mutex shared across
    /// clones, so [`ShardedIndex::insert`] / [`ShardedIndex::delete`] take
    /// `&self` and racing writers serialize on the router while queries
    /// (which only *read* the tables, briefly, during remap) never wait on
    /// a shard rebuild.
    router: Arc<Mutex<RouterState>>,
    /// Per-shard circuit breakers and availability counters, shared across
    /// clones and across the short-lived engines each batch builds —
    /// breaker state must outlive any one fan-out. Runtime-only: never
    /// persisted, reset by reopen.
    health: Arc<ShardHealth>,
    /// Per-shard fault-injection schedules ([`ShardedIndex::arm_chaos`]);
    /// `None` = the shard serves unwrapped. Runtime-only, for chaos tests.
    chaos: Vec<Option<(FaultPlan, Arc<FaultState>)>>,
    /// Queries answered degraded or partial (counted per query, not per
    /// batch).
    degraded_queries: Arc<Counter>,
}

/// The mutable routing state of a [`ShardedIndex`], shared across clones
/// behind one mutex (see the `router` field).
struct RouterState {
    /// Capacity mode: per-shard ascending table `local id → global id`,
    /// derived from the issue counter (see the module docs). Empty in
    /// forest mode, where local ids *are* global ids.
    locals: Vec<Vec<u32>>,
    /// The next global external id to issue.
    next_global: u32,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("spec", &self.spec)
            .field("len", &self.len())
            .field("dim", &self.dim())
            .field("next_global", &self.lock_router().next_global)
            .finish()
    }
}

impl ShardedIndex {
    /// Assemble an index from its persistent parts plus fresh runtime
    /// state (health table, chaos schedules, availability counters).
    fn assemble(
        spec: ShardSpec,
        shards: Vec<Index>,
        locals: Vec<Vec<u32>>,
        next_global: u32,
    ) -> ShardedIndex {
        let count = shards.len();
        ShardedIndex {
            spec,
            shards,
            router: Arc::new(Mutex::new(RouterState { locals, next_global })),
            health: Arc::new(ShardHealth::new(count)),
            chaos: vec![None; count],
            degraded_queries: Arc::new(Counter::new()),
        }
    }

    /// Lock the routing state. The router mutex has no poisoned state worth
    /// recovering: every critical section leaves the tables consistent
    /// before any call that can fail.
    fn lock_router(&self) -> MutexGuard<'_, RouterState> {
        self.router.lock().expect("sharded router lock poisoned")
    }

    /// Build a sharded index over `data` as the spec describes.
    ///
    /// Capacity mode slices the dataset by [`ShardSpec::route`] over the
    /// global ids `0..n`; every shard must receive at least one point (no
    /// backend builds over an empty dataset), so an oversized shard count
    /// against a tiny dataset fails with [`Error::Spec`]. Forest mode
    /// builds every replica over the full dataset.
    pub fn build(spec: &ShardSpec, data: &DenseDataset) -> Result<ShardedIndex> {
        spec.validate()?;
        let next_global = u32::try_from(data.len()).map_err(|_| {
            Error::Spec(format!("{} points exceed the 32-bit id space", data.len()))
        })?;
        match spec.mode {
            ShardMode::Capacity => {
                let mut flats: Vec<Vec<f64>> = vec![Vec::new(); spec.shards];
                let mut locals: Vec<Vec<u32>> = vec![Vec::new(); spec.shards];
                for i in 0..data.len() {
                    let shard = spec.route(PointId(i as u32));
                    flats[shard].extend_from_slice(data.row(i));
                    locals[shard].push(i as u32);
                }
                if let Some(empty) = locals.iter().position(|l| l.is_empty()) {
                    return Err(Error::Spec(format!(
                        "capacity shard {empty} of {} received no points from a {}-point \
                         dataset; every shard needs at least one point at build — lower the \
                         shard count",
                        spec.shards,
                        data.len()
                    )));
                }
                let shards = flats
                    .into_iter()
                    .enumerate()
                    .map(|(s, flat)| {
                        let slice =
                            DenseDataset::from_flat(data.dim(), flat).map_err(CoreError::from)?;
                        Index::build(&spec.shard_spec(s), &slice)
                    })
                    .collect::<Result<Vec<Index>>>()?;
                Ok(ShardedIndex::assemble(*spec, shards, locals, next_global))
            }
            ShardMode::Forest => {
                let shards = (0..spec.shards)
                    .map(|s| Index::build(&spec.shard_spec(s), data))
                    .collect::<Result<Vec<Index>>>()?;
                Ok(ShardedIndex::assemble(
                    *spec,
                    shards,
                    vec![Vec::new(); spec.shards],
                    next_global,
                ))
            }
        }
    }

    /// Open a sharded directory written by [`ShardedIndex::save`].
    ///
    /// Self-describing like [`Index::open`]: the shard envelope names the
    /// mode, shard count and per-shard spec; foreign entries in the
    /// directory, a shard whose own envelope disagrees with the shard
    /// spec, or a shard whose id counter contradicts the envelope's global
    /// counter are all rejected descriptively.
    pub fn open(dir: &Path) -> Result<ShardedIndex> {
        let (spec, next_global) = read_shard_envelope(dir)?;
        spec.validate()?;
        check_sharded_directory(dir, &spec)?;
        let mut shards = Vec::with_capacity(spec.shards);
        for s in 0..spec.shards {
            let shard_dir = dir.join(shard_dir_name(s));
            let shard = Index::open(&shard_dir)?;
            let expected = spec.shard_spec(s);
            if *shard.spec() != expected {
                return Err(Error::Mismatch {
                    expected: format!(
                        "shard {s} built from the envelope's per-shard spec ({} over {})",
                        expected.method.name(),
                        expected.divergence.short_name()
                    ),
                    found: format!("an index with a different spec in {}", shard_dir.display()),
                });
            }
            shards.push(shard);
        }
        if let Some(bad) = shards.iter().position(|s| s.dim() != shards[0].dim()) {
            return Err(Error::Mismatch {
                expected: format!("every shard serving {}-dimensional points", shards[0].dim()),
                found: format!("shard {bad} serving {}-dimensional points", shards[bad].dim()),
            });
        }
        let locals = derive_locals(&spec, next_global);
        for (s, shard) in shards.iter().enumerate() {
            let expected_issued = match spec.mode {
                ShardMode::Capacity => locals[s].len() as u32,
                ShardMode::Forest => next_global,
            };
            if shard.delta().next_id() != expected_issued {
                return Err(Error::Mismatch {
                    expected: format!(
                        "shard {s} having issued {expected_issued} ids (derived from the \
                         envelope's global id counter {next_global})"
                    ),
                    found: format!(
                        "a shard directory whose id counter is {} — not a shard of this index",
                        shard.delta().next_id()
                    ),
                });
            }
        }
        Ok(ShardedIndex::assemble(spec, shards, locals, next_global))
    }

    /// Persist the sharded index: one subdirectory per shard (each a full
    /// [`Index::save`] directory) plus the sealed shard envelope
    /// ([`SHARDS_FILE`]). Like the unsharded save, this does not compact —
    /// a reopened index resumes with the same live set and id counter.
    ///
    /// The router lock is held for the duration, so the saved directory is
    /// a consistent cut: every shard snapshot agrees with the envelope's
    /// global id counter even while other clones keep inserting.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let router = self.lock_router();
        std::fs::create_dir_all(dir).map_err(PersistError::from)?;
        for (s, shard) in self.shards.iter().enumerate() {
            shard.save(&dir.join(shard_dir_name(s)))?;
        }
        let mut w = ByteWriter::new();
        self.spec.write_to(&mut w);
        w.put_u32(router.next_global);
        std::fs::write(dir.join(SHARDS_FILE), seal(&SHARDS_MAGIC, SHARDS_VERSION, &w.into_vec()))
            .map_err(PersistError::from)?;
        Ok(())
    }

    /// The spec this sharded index was built (or reopened) with.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `shard`'s inner index (inspection only; route writes through
    /// [`ShardedIndex::insert`] / [`ShardedIndex::delete`]).
    pub fn shard(&self, shard: usize) -> &Index {
        &self.shards[shard]
    }

    /// Number of live points (distinct points: forest replicas count once).
    pub fn len(&self) -> usize {
        match self.spec.mode {
            ShardMode::Capacity => self.shards.iter().map(|s| s.len()).sum(),
            ShardMode::Forest => self.shards[0].len(),
        }
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    /// Append one point, returning its stable **global** external id.
    ///
    /// Capacity mode issues the next global id and routes the row to that
    /// id's home shard; forest mode appends the row to every replica. The
    /// write is visible to queries issued after this call, exactly as for
    /// the unsharded [`Index::insert`]. Racing writers serialize on the
    /// router lock; the global id order *is* the router's application
    /// order.
    pub fn insert(&self, row: &[f64]) -> Result<PointId> {
        let mut router = self.lock_router();
        let id = PointId(router.next_global);
        match self.spec.mode {
            ShardMode::Capacity => {
                let shard = self.spec.route(id);
                let local = self.shards[shard].insert(row)?;
                assert_eq!(
                    local.0 as usize,
                    router.locals[shard].len(),
                    "shard-local ids must stay dense"
                );
                router.locals[shard].push(id.0);
                router.next_global += 1;
                Ok(id)
            }
            ShardMode::Forest => {
                // The first replica validates the row; the rest share its
                // history, so they cannot fail differently.
                let issued = self.shards[0].insert(row)?;
                assert_eq!(issued, id, "forest replicas must issue ids in lockstep");
                for shard in &self.shards[1..] {
                    let got = shard.insert(row)?;
                    assert_eq!(got, id, "forest replicas must issue ids in lockstep");
                }
                router.next_global += 1;
                Ok(id)
            }
        }
    }

    /// Tombstone a live point by **global** id; idempotent like
    /// [`Index::delete`].
    pub fn delete(&self, id: PointId) -> Result<bool> {
        let router = self.lock_router();
        if id.0 >= router.next_global {
            return Ok(false);
        }
        match self.spec.mode {
            ShardMode::Capacity => {
                let shard = self.spec.route(id);
                let local = router.locals[shard]
                    .binary_search(&id.0)
                    .expect("every issued global id is mapped on its home shard");
                self.shards[shard].delete(PointId(local as u32))
            }
            ShardMode::Forest => {
                let was_live = self.shards[0].delete(id)?;
                for shard in &self.shards[1..] {
                    let got = shard.delete(id)?;
                    assert_eq!(got, was_live, "forest replicas must agree on liveness");
                }
                Ok(was_live)
            }
        }
    }

    /// Compact every shard that has pending writes, folding its delta into
    /// a rebuilt backend (global ids survive, as for [`Index::compact`]).
    ///
    /// A shard whose live set has gone empty — every point of a capacity
    /// slice deleted — is **parked**, not failed: its backend is left in
    /// place behind an all-tombstoned delta, it serves no results, and it
    /// resumes normal compaction once a point routes back to it. (Earlier
    /// releases aborted the whole sharded compact with `EmptyDataset`
    /// here.)
    pub fn compact(&self) -> Result<()> {
        for shard in &self.shards {
            shard.compact()?;
        }
        Ok(())
    }

    /// Answer one query: scatter to every shard sequentially (fresh scratch,
    /// no worker pool), gather by `(distance, id)`.
    pub fn query(&self, request: &QueryRequest<'_>) -> Result<QueryOutcome> {
        let started = Instant::now();
        let mut neighbors_per_shard: Vec<Vec<(PointId, f64)>> =
            Vec::with_capacity(self.shards.len());
        let mut candidates = 0usize;
        let mut io = pagestore::IoStats::default();
        for (s, shard) in self.shards.iter().enumerate() {
            let mut outcome = shard.query(request)?;
            self.remap(s, &mut outcome.neighbors);
            candidates += outcome.candidates;
            io.accumulate(&outcome.io);
            neighbors_per_shard.push(outcome.neighbors);
        }
        let lists: Vec<&[(PointId, f64)]> =
            neighbors_per_shard.iter().map(|n| n.as_slice()).collect();
        Ok(QueryOutcome {
            neighbors: merge_neighbor_lists(&lists, request.k(), self.dedup()),
            candidates,
            io,
            latency_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Execute a batch with the default worker budget
    /// ([`recommended_pool_threads`]) shared across all shards.
    pub fn run(&self, request: &Request<'_>) -> Result<BatchResult> {
        self.run_with_budget(request, recommended_pool_threads())
    }

    /// Execute a batch with an explicit worker budget.
    ///
    /// The budget is **split** across the per-shard engines (see
    /// [`split_thread_budget`](brepartition_engine::split_thread_budget)) —
    /// N shards never run more than `budget` workers at once. Every shard
    /// serves the batch over its own consistent snapshot (the
    /// [`Index::backend`] semantics), per-shard results are remapped to
    /// global ids and gathered per query, and the aggregated report counts
    /// the work of all shards (candidates and I/O summed, latency the
    /// slowest shard's). Results are independent of the budget, and in
    /// capacity mode independent of the shard count.
    pub fn run_with_budget(&self, request: &Request<'_>, budget: usize) -> Result<BatchResult> {
        let backends: Vec<Arc<dyn SearchBackend>> =
            self.shards.iter().map(|s| s.backend()).collect();
        let engine = ShardedEngine::new(backends, budget)?;
        let lowered = request.as_engine_requests();
        let started = Instant::now();
        let mut shard_results = engine.run_requests(&lowered)?;
        let wall_seconds = started.elapsed().as_secs_f64();
        for (s, result) in shard_results.iter_mut().enumerate() {
            for outcome in &mut result.outcomes {
                self.remap(s, &mut outcome.neighbors);
            }
        }
        let ks: Vec<usize> = lowered.iter().map(|r| r.k).collect();
        let outcomes = merge_shard_outcomes(&shard_results, &ks, self.dedup());
        let report = ThroughputReport::from_outcomes(
            self.serving_label(),
            ks.iter().copied().max().unwrap_or(0),
            budget,
            wall_seconds,
            &outcomes,
        );
        Ok(BatchResult { outcomes, report })
    }

    /// The per-shard circuit-breaker table and availability counters this
    /// index records into. Shared across clones; persists across batches
    /// (breaker state must outlive any one fan-out) but is never saved —
    /// a reopened index starts with every breaker closed.
    pub fn health(&self) -> &ShardHealth {
        &self.health
    }

    /// Queries answered degraded or partial since this index was
    /// assembled.
    pub fn degraded_queries(&self) -> u64 {
        self.degraded_queries.get()
    }

    /// Register this index's availability telemetry in `registry`: the
    /// health table's counters and gauges (see
    /// [`ShardHealth::bind`]) plus the counter `prefix.degraded_queries`,
    /// and every shard's compaction series under `prefix.shardNNNN.*` (see
    /// [`Index::bind_telemetry`]).
    pub fn bind_telemetry(&self, registry: &Registry, prefix: &str) {
        self.health.bind(registry, prefix);
        registry
            .register_counter(&format!("{prefix}.degraded_queries"), self.degraded_queries.clone());
        for (s, shard) in self.shards.iter().enumerate() {
            shard.bind_telemetry(registry, &format!("{prefix}.{}", shard_dir_name(s)));
        }
    }

    /// Arm per-shard fault-injection schedules for chaos testing: entry `s`
    /// wraps shard `s`'s backend in a
    /// [`brepartition_engine::FaultInjector`] under that
    /// plan on every subsequent [`ShardedIndex::run_with_policy`] batch;
    /// `None` leaves the shard unwrapped. The schedule's state (operation
    /// and attempt counters) persists across batches, so permanent death
    /// stays permanent for the life of this index.
    pub fn arm_chaos(&mut self, plans: Vec<Option<FaultPlan>>) -> Result<()> {
        if plans.len() != self.shards.len() {
            return Err(Error::Spec(format!(
                "chaos plan count {} does not match the shard count {}",
                plans.len(),
                self.shards.len()
            )));
        }
        for plan in plans.iter().flatten() {
            plan.validate()?;
        }
        self.chaos =
            plans.into_iter().map(|plan| plan.map(|p| (p, Arc::new(FaultState::new())))).collect();
        Ok(())
    }

    /// The armed fault schedule's shared state for `shard`, if any
    /// (injected-fault counts, operation counters — what chaos tests
    /// assert against).
    pub fn chaos_state(&self, shard: usize) -> Option<Arc<FaultState>> {
        self.chaos[shard].as_ref().map(|(_, state)| state.clone())
    }

    /// Shard `shard`'s serving backend snapshot, wrapped in its armed
    /// fault injector if chaos is enabled.
    fn serving_backend(&self, shard: usize) -> Result<Arc<dyn SearchBackend>> {
        let backend = self.shards[shard].backend();
        match &self.chaos[shard] {
            None => Ok(backend),
            Some((plan, state)) => Ok(Arc::new(
                FaultInjector::with_state(backend, plan.clone(), state.clone())
                    .map_err(Error::Engine)?,
            )),
        }
    }

    /// Execute a batch fault-tolerantly: per-shard deadlines, bounded
    /// retries with deterministic backoff, circuit breakers and panic
    /// isolation (the engine's
    /// [`run_requests_with_policy`](ShardedEngine::run_requests_with_policy)),
    /// then merge whatever shards answered under this index's degradation
    /// policy:
    ///
    /// * Every shard answered → [`Outcome::Full`]; results equal
    ///   [`ShardedIndex::run_with_budget`] exactly.
    /// * Forest mode, some replicas failed → [`Outcome::Degraded`] with a
    ///   recall floor from the surviving replica count.
    /// * Capacity mode, some slices failed → fail fast with
    ///   [`Error::Unavailable`] unless the request opted in via
    ///   [`Request::allow_partial`](crate::Request::allow_partial), in
    ///   which case [`Outcome::Partial`] reports the unreached id-space
    ///   fraction.
    /// * No shard answered → [`Error::Unavailable`] always.
    ///
    /// Breaker state and availability counters persist across calls in
    /// [`ShardedIndex::health`].
    pub fn run_with_policy(
        &self,
        request: &Request<'_>,
        budget: usize,
        policy: &FanoutPolicy,
    ) -> Result<ResilientBatch> {
        let backends =
            (0..self.shards.len()).map(|s| self.serving_backend(s)).collect::<Result<Vec<_>>>()?;
        let engine = ShardedEngine::new(backends, budget)?;
        let lowered = request.as_engine_requests();
        let started = Instant::now();
        let shard_results = engine.run_requests_with_policy(&lowered, policy, &self.health);
        let wall_seconds = started.elapsed().as_secs_f64();

        let mut answered: Vec<BatchResult> = Vec::new();
        let mut answered_shards: Vec<usize> = Vec::new();
        let mut shard_failures: Vec<Option<ShardFailure>> = vec![None; self.shards.len()];
        for (s, result) in shard_results.into_iter().enumerate() {
            match result {
                Ok(mut batch) => {
                    for outcome in &mut batch.outcomes {
                        self.remap(s, &mut outcome.neighbors);
                    }
                    answered.push(batch);
                    answered_shards.push(s);
                }
                Err(failure) => shard_failures[s] = Some(failure),
            }
        }
        let shards_failed = self.shards.len() - answered.len();
        let first_failure = || {
            shard_failures
                .iter()
                .flatten()
                .next()
                .map(|f| f.error.to_string())
                .unwrap_or_else(|| "no failure recorded".to_string())
        };
        if answered.is_empty() {
            return Err(Error::Unavailable {
                shards_failed,
                shards_answered: 0,
                reason: first_failure(),
            });
        }
        let availability = if shards_failed == 0 {
            Outcome::Full
        } else {
            match self.spec.mode {
                ShardMode::Forest => Outcome::Degraded {
                    shards_answered: answered.len(),
                    shards_failed,
                    recall_floor: self.forest_recall_floor(answered.len()),
                },
                ShardMode::Capacity => {
                    if !request.partial_allowed() {
                        return Err(Error::Unavailable {
                            shards_failed,
                            shards_answered: answered.len(),
                            reason: first_failure(),
                        });
                    }
                    Outcome::Partial {
                        shards_answered: answered.len(),
                        shards_failed,
                        unreached_fraction: self.unreached_fraction(&answered_shards),
                    }
                }
            }
        };
        if !availability.is_full() {
            self.degraded_queries.add(lowered.len() as u64);
        }
        let ks: Vec<usize> = lowered.iter().map(|r| r.k).collect();
        let outcomes = merge_shard_outcomes(&answered, &ks, self.dedup());
        let report = ThroughputReport::from_outcomes(
            self.serving_label(),
            ks.iter().copied().max().unwrap_or(0),
            budget,
            wall_seconds,
            &outcomes,
        );
        Ok(ResilientBatch { outcomes, report, availability, shard_failures })
    }

    /// Lower bound on merged forest recall over `answered` replicas:
    /// `1 − (1 − p)^answered`, with `p` one replica's per-neighbor
    /// guarantee (the spec probability for the approximate method, 1.0 for
    /// exact methods — any surviving exact replica answers exactly).
    fn forest_recall_floor(&self, answered: usize) -> f64 {
        let p_single =
            if self.spec.base.method.is_exact() { 1.0 } else { self.spec.base.probability };
        1.0 - (1.0 - p_single).powi(answered as i32)
    }

    /// Fraction of the live id space on shards *not* in `answered_shards`
    /// (capacity mode: the share of the collection a partial answer never
    /// reached).
    fn unreached_fraction(&self, answered_shards: &[usize]) -> f64 {
        let total: usize = self.shards.iter().map(|s| s.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let reached: usize = answered_shards.iter().map(|&s| self.shards[s].len()).sum();
        (total - reached) as f64 / total as f64
    }

    /// Whether the gather must deduplicate ids (replicas overlap; capacity
    /// slices are disjoint by construction).
    fn dedup(&self) -> bool {
        self.spec.mode == ShardMode::Forest
    }

    /// Translate shard `shard`'s local neighbor ids to global ids in place.
    ///
    /// Takes the router lock briefly (the tables are append-only, so any
    /// interleaving with a racing insert reads a table at least as long as
    /// the snapshot the ids came from).
    fn remap(&self, shard: usize, neighbors: &mut [(PointId, f64)]) {
        if self.spec.mode == ShardMode::Capacity {
            let router = self.lock_router();
            for (id, _) in neighbors.iter_mut() {
                *id = PointId(router.locals[shard][id.0 as usize]);
            }
        }
    }

    /// Stable backend label for reports, e.g. `BPx4:capacity`.
    fn serving_label(&self) -> String {
        format!(
            "{}x{}:{}",
            self.spec.base.method.short_name(),
            self.spec.shards,
            self.spec.mode.name()
        )
    }
}

/// Rebuild the per-shard `local → global` tables from the issue counter:
/// globals are issued densely (`0..next_global`) and placed by the routing
/// hash, in ascending order — exactly the order each shard issued its dense
/// local ids, so the tables come out sorted.
fn derive_locals(spec: &ShardSpec, next_global: u32) -> Vec<Vec<u32>> {
    let mut locals = vec![Vec::new(); spec.shards];
    if spec.mode == ShardMode::Capacity {
        for id in 0..next_global {
            locals[spec.route(PointId(id))].push(id);
        }
    }
    locals
}

/// Reject directory entries a sharded save never writes (the analogue of
/// the unsharded foreign-file check, at the shard-directory level).
fn check_sharded_directory(dir: &Path, spec: &ShardSpec) -> Result<()> {
    for entry in std::fs::read_dir(dir).map_err(PersistError::from)? {
        let entry = entry.map_err(PersistError::from)?;
        let name = entry.file_name();
        let known = name.to_str().is_some_and(|n| {
            n == SHARDS_FILE || parse_shard_dir(n).is_some_and(|s| s < spec.shards)
        });
        if !known {
            return Err(Error::Mismatch {
                expected: format!(
                    "a sharded index directory holding only {SHARDS_FILE} and {} shard \
                     subdirectories ({}..{})",
                    spec.shards,
                    shard_dir_name(0),
                    shard_dir_name(spec.shards - 1)
                ),
                found: format!("foreign entry {:?} in {}", name, dir.display()),
            });
        }
    }
    Ok(())
}

/// Read and unseal the shard envelope of a sharded index directory.
fn read_shard_envelope(dir: &Path) -> Result<(ShardSpec, u32)> {
    let path: PathBuf = dir.join(SHARDS_FILE);
    let bytes = std::fs::read(&path).map_err(|e| {
        Error::Persist(PersistError::Corrupt(format!(
            "directory {} has no readable shard envelope ({SHARDS_FILE}): {e}; unsharded \
             index directories open through Index::open instead",
            dir.display()
        )))
    })?;
    let (payload, version) = match unseal(&SHARDS_MAGIC, SHARDS_VERSION, &bytes) {
        Ok(payload) => (payload, SHARDS_VERSION),
        Err(PersistError::UnsupportedVersion { found, .. })
            if LEGACY_SHARDS_VERSIONS.contains(&found) =>
        {
            (unseal(&SHARDS_MAGIC, found, &bytes)?, found)
        }
        Err(e) => return Err(e.into()),
    };
    let mut r = ByteReader::new(payload);
    let spec = ShardSpec::read_from(&mut r, version)?;
    let next_global = r.take_u32()?;
    r.expect_end()?;
    Ok((spec, next_global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Method;
    use bregman::DivergenceKind;

    #[test]
    fn mode_tags_and_names_roundtrip() {
        for mode in [ShardMode::Capacity, ShardMode::Forest] {
            assert_eq!(ShardMode::from_tag(mode.tag()).unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!(ShardMode::from_tag(9).is_err());
    }

    #[test]
    fn shard_spec_validates_and_roundtrips() {
        let base = IndexSpec::new(Method::VaFile, DivergenceKind::Exponential).with_seed(42);
        let spec = ShardSpec::forest(base, 5);
        assert!(spec.validate().is_ok());
        assert!(ShardSpec::capacity(base, 0).validate().is_err());
        assert!(ShardSpec::capacity(base, MAX_SHARDS + 1).validate().is_err());

        let mut w = ByteWriter::new();
        spec.write_to(&mut w);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        let restored = ShardSpec::read_from(&mut r, SHARDS_VERSION).unwrap();
        assert_eq!(restored, spec);
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let spec = ShardSpec::capacity(
            IndexSpec::new(Method::BBTree, DivergenceKind::SquaredEuclidean),
            7,
        );
        let mut seen = [0usize; 7];
        for id in 0..10_000u32 {
            let s = spec.route(PointId(id));
            assert!(s < 7);
            assert_eq!(s, spec.route(PointId(id)), "routing must be pure");
            seen[s] += 1;
        }
        // The hash spreads ids across every shard (coarse balance check).
        for (s, count) in seen.iter().enumerate() {
            assert!(*count > 500, "shard {s} got only {count} of 10000 ids");
        }
    }

    #[test]
    fn replica_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|s| replica_seed(0xB5EED, s)).collect();
        for (i, a) in seeds.iter().enumerate() {
            assert_eq!(*a, replica_seed(0xB5EED, i), "seed derivation must be stable");
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b, "replica seeds must be pairwise distinct");
            }
        }
    }

    #[test]
    fn shard_dir_names_roundtrip_and_reject_foreigners() {
        assert_eq!(parse_shard_dir(&shard_dir_name(0)), Some(0));
        assert_eq!(parse_shard_dir(&shard_dir_name(123)), Some(123));
        assert_eq!(parse_shard_dir("shard12"), None);
        assert_eq!(parse_shard_dir("shardXXXX"), None);
        assert_eq!(parse_shard_dir("spec.meta"), None);
    }
}
