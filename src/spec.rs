//! Index specifications: one declarative description of *what to build*
//! (method + divergence + tuning knobs) consumed by every entry point of
//! the façade.
//!
//! An [`IndexSpec`] replaces the per-method constructor zoo (`build_exact`,
//! `bbtree_backend_for_kind`, …): callers pick a [`Method`] and a
//! [`DivergenceKind`], tweak the knobs they care about through the fluent
//! builder, and hand the spec to [`Index::build`](crate::Index::build). The
//! spec is persisted verbatim inside the index directory's envelope, which
//! is what makes [`Index::open`](crate::Index::open) self-describing.

use bbtree::BBTreeConfig;
use bregman::DivergenceKind;
use brepartition_core::{ApproximateConfig, BrePartitionConfig, PartitionCount, PartitionStrategy};
use pagestore::format::{ByteReader, ByteWriter, PersistError, PersistResult};
use pagestore::PageStoreConfig;
use vafile::{QuantizerConfig, VaFileConfig};

use crate::error::{Error, Result};

/// The four kNN methods of the paper's evaluation, selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Exact BrePartition search (the paper's **BP**, Algorithm 6).
    BrePartition,
    /// Approximate BrePartition search (**ABP**) at the spec's
    /// [`probability`](IndexSpec::probability) guarantee.
    Approximate,
    /// The disk-resident Bregman-ball-tree baseline (**BBT**).
    BBTree,
    /// The VA-file baseline (**VAF**).
    VaFile,
}

impl Method {
    /// All methods, in a stable order (useful for exhaustive tests).
    pub const ALL: [Method; 4] =
        [Method::BrePartition, Method::Approximate, Method::BBTree, Method::VaFile];

    /// Human-readable method name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::BrePartition => "BrePartition",
            Method::Approximate => "ApproximateBrePartition",
            Method::BBTree => "BBTree",
            Method::VaFile => "VaFile",
        }
    }

    /// The paper's abbreviation (`BP`, `ABP`, `BBT`, `VAF`).
    pub fn short_name(&self) -> &'static str {
        match self {
            Method::BrePartition => "BP",
            Method::Approximate => "ABP",
            Method::BBTree => "BBT",
            Method::VaFile => "VAF",
        }
    }

    /// Whether the method's search is exact — it returns the true kNN under
    /// the divergence, so its results admit bit-identity comparisons (e.g.
    /// sharded vs unsharded serving). The approximate method is exact only
    /// at a probability guarantee of 1.0, which this predicate does not
    /// assume.
    pub fn is_exact(&self) -> bool {
        !matches!(self, Method::Approximate)
    }

    /// Stable on-disk tag of the method (spec-envelope format).
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Method::BrePartition => 0,
            Method::Approximate => 1,
            Method::BBTree => 2,
            Method::VaFile => 3,
        }
    }

    /// Inverse of [`Method::tag`].
    pub(crate) fn from_tag(tag: u8) -> PersistResult<Method> {
        Ok(match tag {
            0 => Method::BrePartition,
            1 => Method::Approximate,
            2 => Method::BBTree,
            3 => Method::VaFile,
            other => return Err(PersistError::Corrupt(format!("unknown method tag {other}"))),
        })
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Storage-layer knobs shared by every method: how the full-resolution
/// points are paged and cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageSpec {
    /// Page size of the disk image holding the full-resolution points.
    pub page_size_bytes: usize,
    /// Buffer-pool capacity in pages for queries served through
    /// [`Index::query`](crate::Index::query). Zero disables caching so every
    /// page access counts as physical I/O (the paper's per-query metric).
    pub buffer_pool_pages: usize,
}

impl Default for StorageSpec {
    fn default() -> Self {
        Self { page_size_bytes: 32 * 1024, buffer_pool_pages: 0 }
    }
}

/// Compaction policy of the mutable layer: when (and on which thread) the
/// delta chain is folded back into the partitioned backend.
///
/// With `background` off (the default) compaction only happens when the
/// caller asks ([`Index::compact`](crate::Index::compact)), on the calling
/// thread — the PR-5 behaviour. With it on, every mutation checks the two
/// debt ratios and, past either threshold, schedules a rebuild on the
/// index's dedicated compaction worker; queries keep serving the old epoch
/// until the rebuilt backend is swapped in atomically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionSpec {
    /// Run ratio-triggered compactions on a dedicated worker thread.
    pub background: bool,
    /// Trigger when `delta_rows ≥ max_delta_ratio × base_len` — the delta
    /// chain has grown large relative to the partitioned backend, so exact
    /// scans are eating the backend's pruning advantage.
    pub max_delta_ratio: f64,
    /// Trigger when `tombstones ≥ max_tombstone_ratio × live_len` — dead
    /// points dominate, so queries over-fetch heavily to compensate.
    pub max_tombstone_ratio: f64,
}

impl Default for CompactionSpec {
    fn default() -> Self {
        Self { background: false, max_delta_ratio: 0.25, max_tombstone_ratio: 0.25 }
    }
}

/// A declarative description of one index: which [`Method`] over which
/// [`DivergenceKind`], with every tuning knob the methods expose.
///
/// Knobs not used by the chosen method are carried but ignored (and
/// persisted, so a reopened index sees the same spec). Construct via
/// [`IndexSpec::new`] or the per-method shorthands, then chain `with_*`
/// builders:
///
/// ```
/// use brepartition::{IndexSpec, Method};
/// use brepartition::bregman::DivergenceKind;
///
/// let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
///     .with_partitions(8)
///     .with_page_size(16 * 1024);
/// assert_eq!(spec.method, Method::BrePartition);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexSpec {
    /// The search method.
    pub method: Method,
    /// The Bregman divergence the index answers queries under.
    pub divergence: DivergenceKind,
    /// Storage-layer knobs (page size, buffer pool).
    pub storage: StorageSpec,
    /// BrePartition: number of partitions (`Auto` applies the paper's
    /// Theorem 4 cost model).
    pub partitions: PartitionCount,
    /// BrePartition: dimensionality-partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Leaf capacity of the BB-trees (BrePartition subspace trees and the
    /// BBT baseline alike).
    pub leaf_capacity: usize,
    /// BrePartition: points sampled when fitting the cost model and the
    /// PCCP correlation matrix.
    pub sample_size: usize,
    /// Seed for every randomized choice during construction.
    pub seed: u64,
    /// Approximate method: probability guarantee `p ∈ (0, 1]`.
    pub probability: f64,
    /// VA-file: quantizer resolution in bits per dimension (1..=16).
    pub bits_per_dim: u8,
    /// BrePartition methods: keep an in-memory `f32` copy of the rows and
    /// screen refine candidates against it before touching data pages.
    /// Survivors are re-ranked at full `f64` resolution, so results are
    /// bit-identical with the knob on or off. Costs `4·d` bytes per point
    /// of resident memory; off by default.
    pub f32_candidates: bool,
    /// Compaction policy of the mutable layer (background worker, debt
    /// ratios).
    pub compaction: CompactionSpec,
}

impl IndexSpec {
    /// A spec for `method` over `divergence` with default knobs.
    pub fn new(method: Method, divergence: DivergenceKind) -> Self {
        Self {
            method,
            divergence,
            storage: StorageSpec::default(),
            partitions: PartitionCount::Auto,
            strategy: PartitionStrategy::Pccp,
            leaf_capacity: 32,
            sample_size: 256,
            seed: 0xB5EED,
            probability: 0.9,
            bits_per_dim: 6,
            f32_candidates: false,
            compaction: CompactionSpec::default(),
        }
    }

    /// Shorthand for [`Method::BrePartition`].
    pub fn brepartition(divergence: DivergenceKind) -> Self {
        Self::new(Method::BrePartition, divergence)
    }

    /// Shorthand for [`Method::Approximate`].
    pub fn approximate(divergence: DivergenceKind) -> Self {
        Self::new(Method::Approximate, divergence)
    }

    /// Shorthand for [`Method::BBTree`].
    pub fn bbtree(divergence: DivergenceKind) -> Self {
        Self::new(Method::BBTree, divergence)
    }

    /// Shorthand for [`Method::VaFile`].
    pub fn vafile(divergence: DivergenceKind) -> Self {
        Self::new(Method::VaFile, divergence)
    }

    /// Use a fixed number of partitions.
    pub fn with_partitions(mut self, m: usize) -> Self {
        self.partitions = PartitionCount::Fixed(m);
        self
    }

    /// Select the dimensionality-partitioning strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the disk page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.storage.page_size_bytes = bytes;
        self
    }

    /// Set the query-time buffer-pool size in pages.
    pub fn with_buffer_pool_pages(mut self, pages: usize) -> Self {
        self.storage.buffer_pool_pages = pages;
        self
    }

    /// Replace the whole storage sub-spec.
    pub fn with_storage(mut self, storage: StorageSpec) -> Self {
        self.storage = storage;
        self
    }

    /// Set the BB-tree leaf capacity.
    pub fn with_leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity;
        self
    }

    /// Set the construction sample size.
    pub fn with_sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = sample_size;
        self
    }

    /// Set the construction RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the approximate method's probability guarantee.
    pub fn with_probability(mut self, probability: f64) -> Self {
        self.probability = probability;
        self
    }

    /// Set the VA-file quantizer resolution.
    pub fn with_bits_per_dim(mut self, bits: u8) -> Self {
        self.bits_per_dim = bits;
        self
    }

    /// Enable or disable the `f32` candidate-screening tier (BrePartition
    /// methods only; carried but ignored by the baselines).
    pub fn with_f32_candidates(mut self, enabled: bool) -> Self {
        self.f32_candidates = enabled;
        self
    }

    /// Enable or disable ratio-triggered compaction on the index's
    /// background worker thread.
    pub fn with_background_compaction(mut self, enabled: bool) -> Self {
        self.compaction.background = enabled;
        self
    }

    /// Set the compaction debt thresholds: trigger when the delta chain
    /// reaches `delta_ratio × base_len` rows or tombstones reach
    /// `tombstone_ratio × live_len`.
    pub fn with_compaction_ratios(mut self, delta_ratio: f64, tombstone_ratio: f64) -> Self {
        self.compaction.max_delta_ratio = delta_ratio;
        self.compaction.max_tombstone_ratio = tombstone_ratio;
        self
    }

    /// Check the spec for contradictions before anything is built: an
    /// invalid knob returns a typed [`Error::Spec`] naming the offending
    /// field instead of a panic or a silent degradation downstream.
    pub fn validate(&self) -> Result<()> {
        if self.storage.page_size_bytes == 0 {
            return Err(Error::Spec("page_size_bytes must be positive".to_string()));
        }
        if self.leaf_capacity == 0 {
            return Err(Error::Spec("leaf_capacity must be at least 1".to_string()));
        }
        if matches!(self.method, Method::BrePartition | Method::Approximate)
            && !self.divergence.supports_partitioning()
        {
            return Err(Error::Spec(format!(
                "divergence {} is not cumulative across partitions and cannot be used with \
                 the {} method (pick Method::BBTree or Method::VaFile)",
                self.divergence.short_name(),
                self.method.name()
            )));
        }
        if self.method == Method::Approximate
            && !(self.probability > 0.0 && self.probability <= 1.0)
        {
            return Err(Error::Spec(format!(
                "probability guarantee must be in (0, 1], got {}",
                self.probability
            )));
        }
        if self.method == Method::VaFile && !(1..=16).contains(&self.bits_per_dim) {
            return Err(Error::Spec(format!(
                "bits_per_dim must be in 1..=16, got {}",
                self.bits_per_dim
            )));
        }
        for (name, ratio) in [
            ("max_delta_ratio", self.compaction.max_delta_ratio),
            ("max_tombstone_ratio", self.compaction.max_tombstone_ratio),
        ] {
            if !(ratio.is_finite() && ratio > 0.0) {
                return Err(Error::Spec(format!(
                    "compaction {name} must be finite and positive, got {ratio}"
                )));
            }
        }
        Ok(())
    }

    /// The BrePartition construction config this spec describes.
    pub fn brepartition_config(&self) -> BrePartitionConfig {
        BrePartitionConfig {
            partitions: self.partitions,
            strategy: self.strategy,
            leaf_capacity: self.leaf_capacity,
            page_size_bytes: self.storage.page_size_bytes,
            buffer_pool_pages: self.storage.buffer_pool_pages,
            sample_size: self.sample_size,
            seed: self.seed,
            f32_candidates: self.f32_candidates,
        }
    }

    /// The BBT baseline's tree config this spec describes.
    pub fn bbtree_config(&self) -> BBTreeConfig {
        BBTreeConfig::with_leaf_capacity(self.leaf_capacity)
    }

    /// The page-store config this spec describes.
    pub fn store_config(&self) -> PageStoreConfig {
        PageStoreConfig::with_page_size(self.storage.page_size_bytes)
    }

    /// The VA-file config this spec describes.
    pub fn vafile_config(&self) -> VaFileConfig {
        VaFileConfig {
            quantizer: QuantizerConfig { bits_per_dim: self.bits_per_dim },
            page_size_bytes: self.storage.page_size_bytes,
        }
    }

    /// The approximate-search config this spec describes.
    pub fn approximate_config(&self) -> ApproximateConfig {
        ApproximateConfig::with_probability(self.probability)
    }

    /// Serialize the spec into a spec-envelope payload (stable format; see
    /// [`crate::index`] for the envelope framing).
    pub(crate) fn write_to(&self, w: &mut ByteWriter) {
        w.put_u8(self.method.tag());
        w.put_str(self.divergence.short_name());
        w.put_usize(self.storage.page_size_bytes);
        w.put_usize(self.storage.buffer_pool_pages);
        match self.partitions {
            PartitionCount::Auto => {
                w.put_u8(0);
                w.put_usize(0);
            }
            PartitionCount::Fixed(m) => {
                w.put_u8(1);
                w.put_usize(m);
            }
        }
        w.put_u8(match self.strategy {
            PartitionStrategy::Pccp => 0,
            PartitionStrategy::EqualContiguous => 1,
        });
        w.put_usize(self.leaf_capacity);
        w.put_usize(self.sample_size);
        w.put_u64(self.seed);
        w.put_f64(self.probability);
        w.put_u8(self.bits_per_dim);
        w.put_u8(self.f32_candidates as u8);
        w.put_u8(self.compaction.background as u8);
        w.put_f64(self.compaction.max_delta_ratio);
        w.put_f64(self.compaction.max_tombstone_ratio);
    }

    /// Inverse of [`IndexSpec::write_to`]. `version` is the spec-envelope
    /// version the payload was sealed under: version-1 envelopes predate
    /// the `f32_candidates` knob and version-2 envelopes predate the
    /// compaction policy; absent knobs take their defaults.
    pub(crate) fn read_from(r: &mut ByteReader<'_>, version: u32) -> PersistResult<IndexSpec> {
        let method = Method::from_tag(r.take_u8()?)?;
        let kind_name = r.take_str()?;
        let divergence = DivergenceKind::parse(&kind_name)
            .map_err(|_| PersistError::Corrupt(format!("unknown divergence kind {kind_name:?}")))?;
        let page_size_bytes = r.take_usize()?;
        let buffer_pool_pages = r.take_usize()?;
        let partitions = match r.take_u8()? {
            0 => {
                r.take_usize()?;
                PartitionCount::Auto
            }
            1 => PartitionCount::Fixed(r.take_usize()?),
            tag => return Err(PersistError::Corrupt(format!("unknown partition-count tag {tag}"))),
        };
        let strategy = match r.take_u8()? {
            0 => PartitionStrategy::Pccp,
            1 => PartitionStrategy::EqualContiguous,
            tag => {
                return Err(PersistError::Corrupt(format!("unknown partition-strategy tag {tag}")))
            }
        };
        Ok(IndexSpec {
            method,
            divergence,
            storage: StorageSpec { page_size_bytes, buffer_pool_pages },
            partitions,
            strategy,
            leaf_capacity: r.take_usize()?,
            sample_size: r.take_usize()?,
            seed: r.take_u64()?,
            probability: r.take_f64()?,
            bits_per_dim: r.take_u8()?,
            f32_candidates: if version >= 2 {
                match r.take_u8()? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(PersistError::Corrupt(format!(
                            "unknown f32-candidates tag {tag}"
                        )))
                    }
                }
            } else {
                false
            },
            compaction: if version >= 3 {
                let background = match r.take_u8()? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(PersistError::Corrupt(format!(
                            "unknown background-compaction tag {tag}"
                        )))
                    }
                };
                CompactionSpec {
                    background,
                    max_delta_ratio: r.take_f64()?,
                    max_tombstone_ratio: r.take_f64()?,
                }
            } else {
                CompactionSpec::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tags_roundtrip_and_names_are_stable() {
        for method in Method::ALL {
            assert_eq!(Method::from_tag(method.tag()).unwrap(), method);
            assert_eq!(method.to_string(), method.name());
        }
        assert!(Method::from_tag(9).is_err());
        assert!(Method::BrePartition.is_exact());
        assert!(Method::BBTree.is_exact());
        assert!(Method::VaFile.is_exact());
        assert!(!Method::Approximate.is_exact());
        assert_eq!(Method::BrePartition.short_name(), "BP");
        assert_eq!(Method::Approximate.short_name(), "ABP");
        assert_eq!(Method::BBTree.short_name(), "BBT");
        assert_eq!(Method::VaFile.short_name(), "VAF");
    }

    #[test]
    fn builders_set_fields_and_serialization_roundtrips() {
        let spec = IndexSpec::approximate(DivergenceKind::Exponential)
            .with_partitions(12)
            .with_strategy(PartitionStrategy::EqualContiguous)
            .with_page_size(4096)
            .with_buffer_pool_pages(64)
            .with_leaf_capacity(8)
            .with_sample_size(128)
            .with_seed(7)
            .with_probability(0.95)
            .with_bits_per_dim(5)
            .with_f32_candidates(true)
            .with_background_compaction(true)
            .with_compaction_ratios(0.5, 0.125);
        assert_eq!(spec.partitions, PartitionCount::Fixed(12));
        assert!(spec.compaction.background);
        assert_eq!(spec.compaction.max_delta_ratio, 0.5);
        assert_eq!(spec.compaction.max_tombstone_ratio, 0.125);
        assert!(spec.brepartition_config().f32_candidates);
        assert_eq!(spec.brepartition_config().page_size_bytes, 4096);
        assert_eq!(spec.brepartition_config().seed, 7);
        assert_eq!(spec.vafile_config().quantizer.bits_per_dim, 5);
        assert_eq!(spec.approximate_config().probability, 0.95);

        let mut w = ByteWriter::new();
        spec.write_to(&mut w);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        let restored = IndexSpec::read_from(&mut r, crate::index::SPEC_VERSION).unwrap();
        assert_eq!(restored, spec);
    }

    #[test]
    fn validate_rejects_contradictory_specs() {
        let bad_page = IndexSpec::brepartition(DivergenceKind::ItakuraSaito).with_page_size(0);
        assert!(matches!(bad_page.validate(), Err(Error::Spec(_))));

        let bad_leaf = IndexSpec::bbtree(DivergenceKind::ItakuraSaito).with_leaf_capacity(0);
        assert!(matches!(bad_leaf.validate(), Err(Error::Spec(_))));

        let bad_p = IndexSpec::approximate(DivergenceKind::ItakuraSaito).with_probability(1.5);
        assert!(matches!(bad_p.validate(), Err(Error::Spec(_))));

        let bad_bits = IndexSpec::vafile(DivergenceKind::ItakuraSaito).with_bits_per_dim(0);
        assert!(matches!(bad_bits.validate(), Err(Error::Spec(_))));

        let bad_ratio =
            IndexSpec::bbtree(DivergenceKind::ItakuraSaito).with_compaction_ratios(0.0, 0.25);
        assert!(matches!(bad_ratio.validate(), Err(Error::Spec(_))));
        let bad_ratio =
            IndexSpec::bbtree(DivergenceKind::ItakuraSaito).with_compaction_ratios(0.25, f64::NAN);
        assert!(matches!(bad_ratio.validate(), Err(Error::Spec(_))));

        // Generalized-I is not cumulative across partitions: BP/ABP reject
        // it at spec validation, the baselines accept it.
        let gi_bp = IndexSpec::brepartition(DivergenceKind::GeneralizedI);
        assert!(matches!(gi_bp.validate(), Err(Error::Spec(_))));
        assert!(IndexSpec::bbtree(DivergenceKind::GeneralizedI).validate().is_ok());
        assert!(IndexSpec::vafile(DivergenceKind::GeneralizedI).validate().is_ok());
    }
}
