//! Query requests: per-query `k` and options over borrowed rows.
//!
//! [`QueryRequest`] is the façade's single-query description; [`Request`]
//! is a batch of them. Both borrow their query vectors (`&[f64]`), so a
//! caller holding a [`DenseDataset`](bregman::DenseDataset), a parsed
//! network payload or a memory-mapped file submits batches without cloning
//! every row into a `Vec<Vec<f64>>` first.

use brepartition_engine::{EngineRequest, QueryOptions};

/// One kNN query: a borrowed row, its own `k`, and optional per-query
/// search knobs.
///
/// ```
/// use brepartition::QueryRequest;
///
/// let row = [1.0, 2.0, 4.0];
/// let request = QueryRequest::new(&row, 10)
///     .with_probability(0.95); // run this query approximately
/// assert_eq!(request.k(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest<'a> {
    inner: EngineRequest<'a>,
}

impl<'a> QueryRequest<'a> {
    /// `k` nearest neighbors of `query` under the index's divergence.
    pub fn new(query: &'a [f64], k: usize) -> Self {
        Self { inner: EngineRequest::new(query, k) }
    }

    /// Run *this query* through the approximate search at probability
    /// guarantee `p ∈ (0, 1]`, whatever the index's method. Supported by
    /// BrePartition indexes; other methods reject the query with a typed
    /// error.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.inner.options.probability = Some(p);
        self
    }

    /// Cap the candidates this query may examine (best-effort; the BB-tree
    /// rounds the budget up to whole leaves). Supported by the BB-tree and
    /// VA-file baselines; BrePartition indexes reject the query with a
    /// typed error.
    pub fn with_candidate_budget(mut self, budget: usize) -> Self {
        self.inner.options.candidate_budget = Some(budget);
        self
    }

    /// The borrowed query row.
    pub fn query(&self) -> &'a [f64] {
        self.inner.query
    }

    /// The number of neighbors requested.
    pub fn k(&self) -> usize {
        self.inner.k
    }

    /// The per-query options.
    pub fn options(&self) -> QueryOptions {
        self.inner.options
    }

    /// The engine-level request this wraps.
    pub(crate) fn as_engine_request(&self) -> EngineRequest<'a> {
        self.inner
    }
}

/// A batch of [`QueryRequest`]s, executed in submission order by
/// [`Index::run`](crate::Index::run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request<'a> {
    queries: Vec<QueryRequest<'a>>,
    allow_partial: bool,
}

impl<'a> Request<'a> {
    /// A batch from explicit per-query requests (heterogeneous `k` and
    /// options welcome).
    pub fn batch(queries: impl IntoIterator<Item = QueryRequest<'a>>) -> Self {
        Self { queries: queries.into_iter().collect(), allow_partial: false }
    }

    /// A uniform batch: the same `k`, no option overrides, one request per
    /// row of `rows`.
    pub fn uniform<R: AsRef<[f64]>>(rows: &'a [R], k: usize) -> Self {
        Self {
            queries: rows.iter().map(|row| QueryRequest::new(row.as_ref(), k)).collect(),
            allow_partial: false,
        }
    }

    /// Opt in to partial results on a capacity-mode sharded index: if some
    /// shards fail under a fault-tolerant fan-out
    /// ([`ShardedIndex::run_with_policy`](crate::ShardedIndex::run_with_policy)),
    /// accept the surviving shards' answers flagged with the unreached
    /// id-space fraction instead of failing the batch. Without this flag a
    /// capacity-mode batch fails fast — results over disjoint slices are
    /// never silently incomplete. Forest-mode replicas ignore the flag
    /// (any surviving replica covers the full collection).
    pub fn allow_partial(mut self) -> Self {
        self.allow_partial = true;
        self
    }

    /// Whether the caller opted in to partial capacity-mode results.
    pub fn partial_allowed(&self) -> bool {
        self.allow_partial
    }

    /// Append one request.
    pub fn push(&mut self, request: QueryRequest<'a>) {
        self.queries.push(request);
    }

    /// The requests, in submission order.
    pub fn queries(&self) -> &[QueryRequest<'a>] {
        &self.queries
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Lower the batch to engine-level requests.
    pub(crate) fn as_engine_requests(&self) -> Vec<EngineRequest<'a>> {
        self.queries.iter().map(|q| q.as_engine_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_batches_borrow_rows() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let request = Request::uniform(&rows, 3);
        assert_eq!(request.len(), 2);
        assert_eq!(request.queries()[1].query(), &[3.0, 4.0]);
        assert_eq!(request.queries()[1].k(), 3);
        assert!(request.queries()[0].options().is_none());
    }

    #[test]
    fn heterogeneous_batches_carry_per_query_settings() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut request = Request::batch([
            QueryRequest::new(&a, 1).with_probability(0.9),
            QueryRequest::new(&b, 7).with_candidate_budget(64),
        ]);
        request.push(QueryRequest::new(&a, 3));
        assert_eq!(request.len(), 3);
        let lowered = request.as_engine_requests();
        assert_eq!(lowered[0].k, 1);
        assert_eq!(lowered[0].options.probability, Some(0.9));
        assert_eq!(lowered[1].k, 7);
        assert_eq!(lowered[1].options.candidate_budget, Some(64));
        assert_eq!(lowered[2].k, 3);
        assert!(lowered[2].options.is_none());
        assert!(!request.is_empty());
        assert!(Request::default().is_empty());
    }
}
