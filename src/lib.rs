//! BrePartition — optimized high-dimensional kNN search with Bregman
//! distances.
//!
//! This is the façade crate of the workspace. Applications program against
//! **one spec-driven API** — [`IndexSpec`] → [`Index`] → [`QueryRequest`] —
//! that covers all four methods of the paper's evaluation (BP, ABP, BBT,
//! VAF) over every supported divergence:
//!
//! * [`IndexSpec`] describes *what to build*: a [`Method`], a
//!   [`DivergenceKind`](bregman::DivergenceKind), and every tuning knob,
//!   assembled with a fluent builder and validated before any work happens.
//! * [`Index::build`] constructs the index, [`Index::save`] persists it
//!   (backend artifacts plus a sealed spec envelope), and [`Index::open`]
//!   restores it **self-describingly** — the directory's envelope names the
//!   method and divergence, so callers never dispatch on kind.
//! * [`QueryRequest`] / [`Request`] carry per-query options — each query's
//!   own `k`, an approximation-probability override, a candidate budget —
//!   over borrowed `&[f64]` rows, executed by [`Index::query`] /
//!   [`Index::run`] (or an explicit [`QueryEngine`](engine::QueryEngine)).
//! * [`ShardSpec`] → [`ShardedIndex`] scale the same API across N shards in
//!   one process: disjoint capacity slices (bit-identical to unsharded for
//!   exact methods) or randomized forest replicas (merged top-k for recall),
//!   scatter-gathered under one shared worker budget.
//! * [`Error`] unifies the per-layer error enums (core, engine, storage)
//!   behind `#[non_exhaustive]` variants with full source-chaining.
//!
//! # Quick start
//!
//! ```
//! use brepartition::prelude::*;
//!
//! // A small Itakura-Saito workload.
//! let data = HierarchicalSpec { n: 500, dim: 32, clusters: 10, blocks: 8, ..Default::default() }
//!     .generate();
//!
//! // Describe the index, build it, query it.
//! let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
//!     .with_partitions(8)
//!     .with_page_size(8 * 1024);
//! let index = Index::build(&spec, &data).unwrap();
//!
//! let query = data.row(42);
//! let result = index.query(&QueryRequest::new(query, 10)).unwrap();
//! assert_eq!(result.neighbors.len(), 10);
//! assert_eq!(result.neighbors[0].0.index(), 42); // the query is its own 1-NN
//! println!("{} candidate points, {} page reads", result.candidates, result.io.pages_read);
//!
//! // Batches carry per-query ks and options over borrowed rows.
//! let rows: Vec<&[f64]> = (0..4).map(|i| data.row(i)).collect();
//! let batch = index
//!     .run(&Request::batch(rows.iter().enumerate().map(|(i, row)| {
//!         QueryRequest::new(row, i + 1)
//!     })))
//!     .unwrap();
//! assert_eq!(batch.outcomes[3].neighbors.len(), 4);
//! ```
//!
//! # Migrating from the per-method constructors
//!
//! The pre-façade kind-dispatch constructors (`build_exact`,
//! `build_approximate`, `open_exact`, `open_approximate`,
//! `*_backend_for_kind`, `*_backend_open_for_kind`) shipped as
//! `#[deprecated]` shims for one release and have now been **removed**.
//! Replace them as follows:
//!
//! | removed constructor | spec-driven call |
//! |---|---|
//! | `BrePartitionBackend::build_exact(kind, &data, &config)` | `Index::build(&IndexSpec::brepartition(kind), &data)` |
//! | `BrePartitionBackend::build_approximate(kind, &data, &config, approx)` | `Index::build(&IndexSpec::approximate(kind).with_probability(p), &data)` |
//! | `bbtree_backend_for_kind(kind, &data, tree_config, store_config)` | `Index::build(&IndexSpec::bbtree(kind), &data)` |
//! | `vafile_backend_for_kind(kind, &data, config)` | `Index::build(&IndexSpec::vafile(kind), &data)` |
//! | `BrePartitionBackend::open_exact(dir)` | `Index::open(dir)` |
//! | `BrePartitionBackend::open_approximate(dir, approx)` | `Index::open(dir)` (the envelope records the probability) |
//! | `bbtree_backend_open_for_kind(kind, dir)` | `Index::open(dir)` |
//! | `vafile_backend_open_for_kind(kind, dir)` | `Index::open(dir)` |
//! | `backend.save(dir)` + caller-side kind bookkeeping | `index.save(dir)` (spec envelope written alongside) |
//! | `engine.run_batch(&owned_queries, k)` | `index.run(&Request::uniform(&rows, k))` or per-query [`QueryRequest`]s |
//!
//! Callers wiring a *concrete* index type by hand (a specific divergence
//! known at compile time) keep the non-dispatching constructors:
//! `BrePartitionBackend::exact`/`approximate`, `BBTreeBackend::build`/`open`
//! and `VaFileBackend::build`/`open`.
//!
//! `BrePartitionConfig`, `BBTreeConfig`, `VaFileConfig` knobs map onto
//! [`IndexSpec`] builders (`with_partitions`, `with_page_size`,
//! `with_leaf_capacity`, `with_bits_per_dim`, …); [`IndexSpec`] validates
//! the combination at construction.
//!
//! # Layers
//!
//! The component crates remain available for advanced use:
//!
//! * [`core`] — the BrePartition index (bounds, optimal
//!   partitioning, PCCP, BB-forest, exact and approximate search),
//! * [`bregman`] — Bregman divergences and the dense dataset container,
//! * [`bbtree`] — Bregman ball trees (the BBT baseline and the per-subspace
//!   index),
//! * [`vafile`] — the VA-file baseline,
//! * [`pagestore`] — the storage layer: paged disk images (memory or file
//!   backed), buffer pools, I/O accounting, sealed-envelope format,
//! * [`datagen`] — dataset proxies, query workloads, ground truth and
//!   accuracy metrics,
//! * [`engine`] — the concurrent batch query engine
//!   the façade drives: [`SearchBackend`](brepartition_engine::SearchBackend),
//!   [`QueryEngine`](brepartition_engine::QueryEngine), per-query
//!   [`EngineRequest`](brepartition_engine::EngineRequest)s and
//!   [`ThroughputReport`](brepartition_engine::ThroughputReport) (with
//!   stable JSON serialization for cross-PR diffing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bbtree;
pub use bregman;
pub use brepartition_core as core;
pub use brepartition_engine as engine;
pub use datagen;
pub use pagestore;
pub use vafile;

pub mod error;
pub mod index;
pub mod request;
pub mod sharded;
pub mod spec;

pub use error::{Error, Result};
pub use index::{Index, DELTA_FILE, SPEC_FILE, SPEC_MAGIC, SPEC_VERSION};
pub use request::{QueryRequest, Request};
pub use sharded::{
    Outcome, ResilientBatch, ShardMode, ShardSpec, ShardedIndex, MAX_SHARDS, SHARDS_FILE,
    SHARDS_MAGIC, SHARDS_VERSION,
};
pub use spec::{CompactionSpec, IndexSpec, Method, StorageSpec};

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use crate::index::Index;
    pub use crate::request::{QueryRequest, Request};
    pub use crate::sharded::{Outcome, ResilientBatch, ShardMode, ShardSpec, ShardedIndex};
    pub use crate::spec::{CompactionSpec, IndexSpec, Method, StorageSpec};
    pub use bbtree::{BBTreeConfig, DiskBBTree, VariationalConfig};
    pub use bregman::{
        DecomposableBregman, DenseDataset, Divergence, DivergenceKind, Exponential, ItakuraSaito,
        PointId, SquaredEuclidean,
    };
    pub use brepartition_core::{
        ApproximateConfig, BrePartitionConfig, BrePartitionIndex, DeltaSegment, PartitionCount,
        PartitionStrategy, QueryResult,
    };
    pub use brepartition_engine::{
        BBTreeBackend, BackendAnswer, BatchResult, BrePartitionBackend, BreakerState,
        DeltaOverlayBackend, EngineConfig, EngineError, EngineRequest, FanoutPolicy, FaultInjector,
        FaultPlan, FaultState, QueryEngine, QueryOptions, QueryOutcome, Scratch, SearchBackend,
        ShardFailure, ShardHealth, ShardedEngine, ThroughputReport, VaFileBackend,
    };
    pub use datagen::{
        ground_truth_knn, overall_ratio, recall, DatasetSpec, HierarchicalSpec, PaperDataset,
        QueryWorkload,
    };
    pub use pagestore::{BufferPool, IoStats, PageStore, PageStoreConfig, PersistError};
    pub use vafile::{VaFile, VaFileConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_builds_and_queries_through_the_spec_api() {
        let data =
            HierarchicalSpec { n: 200, dim: 16, clusters: 8, blocks: 4, ..Default::default() }
                .generate();
        let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_partitions(4)
            .with_page_size(4096);
        let index = Index::build(&spec, &data).unwrap();
        assert_eq!(index.len(), 200);
        assert_eq!(index.dim(), 16);
        assert_eq!(index.method(), Method::BrePartition);
        let result = index.query(&QueryRequest::new(data.row(0), 3)).unwrap();
        assert_eq!(result.neighbors.len(), 3);
    }

    #[test]
    fn every_method_builds_through_the_identical_call() {
        let data =
            HierarchicalSpec { n: 150, dim: 12, clusters: 6, blocks: 3, ..Default::default() }
                .generate();
        for method in Method::ALL {
            let spec = IndexSpec::new(method, DivergenceKind::ItakuraSaito)
                .with_partitions(3)
                .with_page_size(2048);
            let index = Index::build(&spec, &data).unwrap();
            let outcome = index.query(&QueryRequest::new(data.row(5), 4)).unwrap();
            assert_eq!(outcome.neighbors.len(), 4, "method {method}");
            assert_eq!(outcome.neighbors[0].0.index(), 5, "method {method}");
        }
    }
}
