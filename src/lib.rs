//! BrePartition — optimized high-dimensional kNN search with Bregman
//! distances.
//!
//! This is the façade crate of the workspace: it re-exports the public API
//! of every component so applications can depend on a single crate.
//!
//! * [`core`](brepartition_core) — the BrePartition index (bounds, optimal
//!   partitioning, PCCP, BB-forest, exact and approximate search),
//! * [`bregman`] — Bregman divergences and the dense dataset container,
//! * [`bbtree`] — Bregman ball trees (the BBT baseline and the per-subspace
//!   index),
//! * [`vafile`] — the VA-file baseline,
//! * [`pagestore`] — the simulated disk with I/O accounting,
//! * [`datagen`] — dataset proxies, query workloads, ground truth and
//!   accuracy metrics,
//! * [`engine`](brepartition_engine) — the concurrent batch query engine: a
//!   [`SearchBackend`](brepartition_engine::SearchBackend) trait unifying
//!   every index above, a thread-pooled
//!   [`QueryEngine`](brepartition_engine::QueryEngine) executing query
//!   batches with per-thread scratch state, and
//!   [`ThroughputReport`](brepartition_engine::ThroughputReport) aggregates
//!   (QPS, p50/p95/p99 latency, candidate and I/O counters). Batch results
//!   are returned in submission order and are bit-identical for 1 and N
//!   worker threads.
//!
//! Every index supports a build-once/open-many lifecycle: `save(dir)`
//! persists it (versioned, checksummed artifacts; see
//! [`pagestore::format`] and [`brepartition_core::persist`]),
//! `open(dir)` restores it with data pages served from a real file through
//! the same buffer-pool/I/O-accounting path, answering queries with
//! identical neighbors and identical per-query I/O counters. The engine's
//! `open_*` constructors build all four backends from saved index
//! directories without touching the raw vectors.
//!
//! # Quick start
//!
//! ```
//! use brepartition::prelude::*;
//!
//! // Generate a small Itakura-Saito workload.
//! let data = HierarchicalSpec { n: 500, dim: 32, clusters: 10, blocks: 8, ..Default::default() }
//!     .generate();
//! let config = BrePartitionConfig::default().with_partitions(8).with_page_size(8 * 1024);
//! let index = BrePartitionIndex::build(DivergenceKind::ItakuraSaito, &data, &config).unwrap();
//!
//! let query = data.row(42).to_vec();
//! let result = index.knn(&query, 10).unwrap();
//! assert_eq!(result.neighbors.len(), 10);
//! assert_eq!(result.neighbors[0].0.index(), 42); // the query is its own 1-NN
//! println!("{} candidate points, {} page reads", result.stats.candidates, result.stats.io.pages_read);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bbtree;
pub use bregman;
pub use brepartition_core as core;
pub use brepartition_engine as engine;
pub use datagen;
pub use pagestore;
pub use vafile;

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use bbtree::{BBTreeConfig, DiskBBTree, VariationalConfig};
    pub use bregman::{
        DecomposableBregman, DenseDataset, Divergence, DivergenceKind, Exponential, ItakuraSaito,
        PointId, SquaredEuclidean,
    };
    pub use brepartition_core::{
        ApproximateConfig, BrePartitionConfig, BrePartitionIndex, PartitionCount,
        PartitionStrategy, QueryResult,
    };
    pub use brepartition_engine::{
        BBTreeBackend, BackendAnswer, BatchResult, BrePartitionBackend, EngineConfig, EngineError,
        QueryEngine, QueryOutcome, Scratch, SearchBackend, ThroughputReport, VaFileBackend,
    };
    pub use datagen::{
        ground_truth_knn, overall_ratio, recall, DatasetSpec, HierarchicalSpec, PaperDataset,
        QueryWorkload,
    };
    pub use pagestore::{BufferPool, IoStats, PageStore, PageStoreConfig, PersistError};
    pub use vafile::{VaFile, VaFileConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let data =
            HierarchicalSpec { n: 200, dim: 16, clusters: 8, blocks: 4, ..Default::default() }
                .generate();
        let index = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &data,
            &BrePartitionConfig::default().with_partitions(4).with_page_size(4096),
        )
        .unwrap();
        let result = index.knn(data.row(0), 3).unwrap();
        assert_eq!(result.neighbors.len(), 3);
    }
}
