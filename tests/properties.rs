//! Workspace-level property tests: the theorems the BrePartition framework
//! rests on, checked on randomized inputs across crates.

use brepartition::prelude::*;
use proptest::prelude::*;

/// Random strictly positive dataset plus an in-domain query.
fn dataset_and_query(
    max_points: usize,
    dim: usize,
) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let rows = prop::collection::vec(prop::collection::vec(0.2f64..20.0, dim), 30..max_points);
    let query = prop::collection::vec(0.2f64..20.0, dim);
    (rows, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 2: the summed per-subspace Cauchy bound dominates the exact
    /// divergence for every point, any partitioning.
    #[test]
    fn summed_upper_bound_dominates_divergence(
        (rows, query) in dataset_and_query(60, 12),
        m in 1usize..6,
    ) {
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let partitioning =
            brepartition::core::partition::equal::equal_contiguous(12, m).unwrap();
        let transformed =
            brepartition::core::TransformedDataset::build(kind, &data, &partitioning);
        let tq = brepartition::core::TransformedQuery::build(kind, &query, &partitioning);
        for i in 0..data.len() {
            let total: f64 = (0..m)
                .map(|s| {
                    brepartition::core::upper_bound_from_components(
                        transformed.components(i, s),
                        tq.components(s),
                    )
                })
                .sum();
            let exact = kind.divergence(data.row(i), &query);
            prop_assert!(exact <= total + 1e-7 * (1.0 + total.abs()));
        }
    }

    /// Theorem 3 end-to-end: the exact kNN of a query always appears in the
    /// BrePartition result (which therefore matches brute force).
    #[test]
    fn brepartition_matches_brute_force(
        (rows, query) in dataset_and_query(80, 16),
        k in 1usize..12,
        m in 2usize..6,
    ) {
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let index = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig::default()
                .with_partitions(m)
                .with_leaf_capacity(8)
                .with_page_size(2048),
        )
        .unwrap();
        let got = index.knn(&query, k).unwrap();
        let truth = ground_truth_knn(
            kind,
            &data,
            &DenseDataset::from_rows(&[query.clone()]).unwrap(),
            k,
            1,
        );
        let expected = truth.neighbors_of(0);
        prop_assert_eq!(got.neighbors.len(), expected.len());
        for (g, e) in got.neighbors.iter().zip(expected.iter()) {
            prop_assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()));
        }
    }

    /// The VA-file is exact for the exponential distance on data with
    /// negative coordinates as well.
    #[test]
    fn vafile_matches_brute_force_on_signed_data(
        rows in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 10), 30..70),
        k in 1usize..8,
    ) {
        let data = DenseDataset::from_rows(&rows).unwrap();
        let query = rows[0].iter().map(|v| v * 0.9 + 0.05).collect::<Vec<f64>>();
        let index = VaFile::build(
            Exponential,
            &data,
            VaFileConfig { page_size_bytes: 1024, ..VaFileConfig::default() },
        );
        let mut pool = BufferPool::unbuffered();
        let got = index.knn(&mut pool, &query, k);
        let truth = ground_truth_knn(
            DivergenceKind::Exponential,
            &data,
            &DenseDataset::from_rows(&[query.clone()]).unwrap(),
            k,
            1,
        );
        for (g, e) in got.neighbors.iter().zip(truth.neighbors_of(0).iter()) {
            prop_assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()));
        }
    }

    /// The disk BB-tree range query returns exactly the points within the
    /// radius, and its candidate set is a superset of them.
    #[test]
    fn bbtree_range_query_is_exact(
        (rows, query) in dataset_and_query(70, 8),
        radius in 0.05f64..5.0,
    ) {
        let data = DenseDataset::from_rows(&rows).unwrap();
        let index = DiskBBTree::build(
            ItakuraSaito,
            &data,
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(1024),
        );
        let mut pool = BufferPool::unbuffered();
        let (got, _, _) = index.range(&mut pool, &query, radius);
        let mut expected: Vec<(PointId, f64)> = data
            .iter()
            .map(|(id, p)| (id, DivergenceKind::ItakuraSaito.divergence(p, &query)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(g.0, e.0);
        }
    }

    /// The approximate coefficient always lies in (0, 1] and shrinking the
    /// radii never produces more candidates than the exact search.
    #[test]
    fn approximate_coefficient_and_candidates_are_bounded(
        (rows, query) in dataset_and_query(60, 12),
        p in 0.5f64..1.0,
    ) {
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let index = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig::default()
                .with_partitions(4)
                .with_leaf_capacity(8)
                .with_page_size(2048),
        )
        .unwrap();
        let exact = index.knn(&query, 5).unwrap();
        let approx = index
            .knn_approximate(&query, 5, &ApproximateConfig::with_probability(p))
            .unwrap();
        let c = approx.coefficient.unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(approx.stats.candidates <= exact.stats.candidates);
    }
}
