//! Workspace-level property tests: the theorems the BrePartition framework
//! rests on, checked on randomized inputs across crates.
//!
//! `proptest` is not available in the offline build environment, so each
//! property is checked over a deterministic battery of seeded random inputs
//! instead of shrinking strategies. The properties themselves are unchanged.

use brepartition::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 24;

/// Random strictly positive dataset plus an in-domain query.
fn dataset_and_query(
    rng: &mut ChaCha8Rng,
    max_points: usize,
    dim: usize,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = rng.gen_range(30..max_points);
    let rows: Vec<Vec<f64>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.2..20.0)).collect()).collect();
    let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.2..20.0)).collect();
    (rows, query)
}

/// Theorem 2: the summed per-subspace Cauchy bound dominates the exact
/// divergence for every point, any partitioning.
#[test]
fn summed_upper_bound_dominates_divergence() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let (rows, query) = dataset_and_query(&mut rng, 60, 12);
        let m = rng.gen_range(1..6usize);
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let partitioning = brepartition::core::partition::equal::equal_contiguous(12, m).unwrap();
        let transformed = brepartition::core::TransformedDataset::build(kind, &data, &partitioning);
        let tq = brepartition::core::TransformedQuery::build(kind, &query, &partitioning);
        for i in 0..data.len() {
            let total: f64 = (0..m)
                .map(|s| {
                    brepartition::core::upper_bound_from_components(
                        transformed.components(i, s),
                        tq.components(s),
                    )
                })
                .sum();
            let exact = kind.divergence(data.row(i), &query);
            assert!(exact <= total + 1e-7 * (1.0 + total.abs()));
        }
    }
}

/// Theorem 3 end-to-end: the exact kNN of a query always appears in the
/// BrePartition result (which therefore matches brute force).
#[test]
fn brepartition_matches_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let (rows, query) = dataset_and_query(&mut rng, 80, 16);
        let k = rng.gen_range(1..12usize);
        let m = rng.gen_range(2..6usize);
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let index = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig::default()
                .with_partitions(m)
                .with_leaf_capacity(8)
                .with_page_size(2048),
        )
        .unwrap();
        let got = index.knn(&query, k).unwrap();
        let truth = ground_truth_knn(
            kind,
            &data,
            &DenseDataset::from_rows(std::slice::from_ref(&query)).unwrap(),
            k,
            1,
        );
        let expected = truth.neighbors_of(0);
        assert_eq!(got.neighbors.len(), expected.len());
        for (g, e) in got.neighbors.iter().zip(expected.iter()) {
            assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()));
        }
    }
}

/// The VA-file is exact for the exponential distance on data with
/// negative coordinates as well.
#[test]
fn vafile_matches_brute_force_on_signed_data() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let n = rng.gen_range(30..70usize);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..10).map(|_| rng.gen_range(-3.0..3.0)).collect()).collect();
        let k = rng.gen_range(1..8usize);
        let data = DenseDataset::from_rows(&rows).unwrap();
        let query = rows[0].iter().map(|v| v * 0.9 + 0.05).collect::<Vec<f64>>();
        let index = VaFile::build(
            Exponential,
            &data,
            VaFileConfig { page_size_bytes: 1024, ..VaFileConfig::default() },
        );
        let mut pool = BufferPool::unbuffered();
        let got = index.knn(&mut pool, &query, k);
        let truth = ground_truth_knn(
            DivergenceKind::Exponential,
            &data,
            &DenseDataset::from_rows(std::slice::from_ref(&query)).unwrap(),
            k,
            1,
        );
        for (g, e) in got.neighbors.iter().zip(truth.neighbors_of(0).iter()) {
            assert!((g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()));
        }
    }
}

/// The disk BB-tree range query returns exactly the points within the
/// radius, and its candidate set is a superset of them.
#[test]
fn bbtree_range_query_is_exact() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let (rows, query) = dataset_and_query(&mut rng, 70, 8);
        let radius = rng.gen_range(0.05..5.0);
        let data = DenseDataset::from_rows(&rows).unwrap();
        let index = DiskBBTree::build(
            ItakuraSaito,
            &data,
            BBTreeConfig::with_leaf_capacity(8),
            PageStoreConfig::with_page_size(1024),
        );
        let mut pool = BufferPool::unbuffered();
        let (got, _, _) = index.range(&mut pool, &query, radius).unwrap();
        let mut expected: Vec<(PointId, f64)> = data
            .iter()
            .map(|(id, p)| (id, DivergenceKind::ItakuraSaito.divergence(p, &query)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.0, e.0);
        }
    }
}

/// The approximate coefficient always lies in (0, 1] and shrinking the
/// radii never produces more candidates than the exact search.
#[test]
fn approximate_coefficient_and_candidates_are_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let (rows, query) = dataset_and_query(&mut rng, 60, 12);
        let p = rng.gen_range(0.5..1.0);
        let data = DenseDataset::from_rows(&rows).unwrap();
        let kind = DivergenceKind::ItakuraSaito;
        let index = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig::default()
                .with_partitions(4)
                .with_leaf_capacity(8)
                .with_page_size(2048),
        )
        .unwrap();
        let exact = index.knn(&query, 5).unwrap();
        let approx =
            index.knn_approximate(&query, 5, &ApproximateConfig::with_probability(p)).unwrap();
        let c = approx.coefficient.unwrap();
        assert!((0.0..=1.0).contains(&c));
        assert!(approx.stats.candidates <= exact.stats.candidates);
    }
}
