//! Integration tests for the approximate extension (ABP) and for the I/O
//! accounting that the evaluation relies on.

use brepartition::prelude::*;

fn workload(n: usize, dim: usize) -> (DenseDataset, QueryWorkload) {
    let data =
        HierarchicalSpec { n, dim, clusters: 24, blocks: 8, ..Default::default() }.generate();
    let queries = QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, 8, 0.02, 99);
    (data, queries)
}

#[test]
fn approximate_search_trades_candidates_for_bounded_accuracy_loss() {
    let (data, queries) = workload(1_500, 48);
    let k = 20;
    let truth = ground_truth_knn(DivergenceKind::ItakuraSaito, &data, &queries.queries, k, 4);
    let index = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &BrePartitionConfig::default().with_partitions(8).with_page_size(8 * 1024),
    )
    .unwrap();

    let mut exact_candidates = 0usize;
    let mut approx_candidates = 0usize;
    let mut ratios = Vec::new();
    let mut recalls = Vec::new();
    let config = ApproximateConfig::with_probability(0.9);
    for (qi, query) in queries.iter().enumerate() {
        let exact = index.knn(query, k).unwrap();
        let approx = index.knn_approximate(query, k, &config).unwrap();
        exact_candidates += exact.stats.candidates;
        approx_candidates += approx.stats.candidates;
        ratios.push(overall_ratio(&approx.neighbors, truth.neighbors_of(qi)));
        recalls.push(recall(&approx.neighbors, truth.neighbors_of(qi)));
        assert!(approx.coefficient.unwrap() <= 1.0);
        assert!(approx.coefficient.unwrap() >= 0.0);
    }
    assert!(
        approx_candidates <= exact_candidates,
        "approximate search should not enlarge the candidate set"
    );
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let mean_recall = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(mean_ratio < 1.5, "mean overall ratio {mean_ratio} too far from exact");
    assert!(mean_recall > 0.5, "mean recall {mean_recall} too low for p = 0.9");
}

#[test]
fn accuracy_improves_with_the_probability_guarantee() {
    let (data, queries) = workload(1_200, 40);
    let k = 10;
    let truth = ground_truth_knn(DivergenceKind::ItakuraSaito, &data, &queries.queries, k, 4);
    let index = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &BrePartitionConfig::default().with_partitions(8).with_page_size(8 * 1024),
    )
    .unwrap();
    let mean_ratio = |p: f64| -> f64 {
        let config = ApproximateConfig::with_probability(p);
        let mut ratios = Vec::new();
        for (qi, query) in queries.iter().enumerate() {
            let approx = index.knn_approximate(query, k, &config).unwrap();
            ratios.push(overall_ratio(&approx.neighbors, truth.neighbors_of(qi)));
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    let low = mean_ratio(0.6);
    let high = mean_ratio(0.95);
    // Higher guarantees must not be (meaningfully) less accurate.
    assert!(high <= low + 0.05, "p = 0.95 gave ratio {high}, worse than p = 0.6 ratio {low}");
}

#[test]
fn per_query_io_is_within_the_store_size_and_positive() {
    let (data, queries) = workload(1_000, 32);
    let index = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &BrePartitionConfig::default().with_partitions(8).with_page_size(4 * 1024),
    )
    .unwrap();
    let pages = index.forest().page_count() as u64;
    for query in queries.iter() {
        let result = index.knn(query, 10).unwrap();
        assert!(result.stats.io.pages_read > 0, "loading candidates must cost I/O");
        assert!(
            result.stats.io.pages_read <= pages,
            "a query cannot read more distinct pages than the store holds ({} > {pages})",
            result.stats.io.pages_read
        );
    }
}

#[test]
fn larger_page_sizes_reduce_page_reads() {
    let (data, queries) = workload(1_200, 32);
    let avg_io = |page_size: usize| -> f64 {
        let index = BrePartitionIndex::build(
            DivergenceKind::ItakuraSaito,
            &data,
            &BrePartitionConfig::default().with_partitions(8).with_page_size(page_size),
        )
        .unwrap();
        let mut io = 0u64;
        for query in queries.iter() {
            io += index.knn(query, 10).unwrap().stats.io.pages_read;
        }
        io as f64 / queries.len() as f64
    };
    let small = avg_io(2 * 1024);
    let large = avg_io(32 * 1024);
    assert!(
        large < small,
        "32 KB pages should need fewer reads than 2 KB pages ({large} vs {small})"
    );
}

#[test]
fn buffer_pool_reuse_reduces_physical_io_across_queries() {
    let (data, queries) = workload(1_000, 32);
    let index = BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        &data,
        &BrePartitionConfig::default().with_partitions(8).with_page_size(4 * 1024),
    )
    .unwrap();
    // Cold: a fresh unbuffered pool per query.
    let mut cold = 0u64;
    for query in queries.iter() {
        cold += index.knn(query, 10).unwrap().stats.io.pages_read;
    }
    // Warm: one large shared pool across the workload.
    let mut pool = BufferPool::new(index.forest().page_count());
    let mut warm = 0u64;
    for query in queries.iter() {
        warm += index.knn_with_pool(&mut pool, query, 10).unwrap().stats.io.pages_read;
    }
    assert!(warm <= cold, "a shared pool must not increase physical reads");
}

#[test]
fn variational_baseline_is_faster_but_less_accurate_than_exact_bbt() {
    let (data, queries) = workload(1_500, 40);
    let k = 10;
    let index = DiskBBTree::build(
        ItakuraSaito,
        &data,
        BBTreeConfig::with_leaf_capacity(16),
        PageStoreConfig::with_page_size(8 * 1024),
    );
    let mut exact_io = 0u64;
    let mut var_io = 0u64;
    let mut recalls = Vec::new();
    let config = VariationalConfig { explore_fraction: 0.1 };
    for query in queries.iter() {
        let mut pool = BufferPool::unbuffered();
        let exact = index.knn(&mut pool, query, k).unwrap();
        let mut pool = BufferPool::unbuffered();
        let var = index.knn_variational(&mut pool, query, k, &config).unwrap();
        exact_io += exact.io.pages_read;
        var_io += var.io.pages_read;
        let exact_pairs: Vec<(PointId, f64)> =
            exact.neighbors.iter().map(|n| (n.id, n.distance)).collect();
        let var_pairs: Vec<(PointId, f64)> =
            var.neighbors.iter().map(|n| (n.id, n.distance)).collect();
        recalls.push(recall(&var_pairs, &exact_pairs));
    }
    assert!(var_io <= exact_io, "the variational search must not read more pages");
    let mean_recall = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(mean_recall > 0.3, "variational recall collapsed: {mean_recall}");
}
