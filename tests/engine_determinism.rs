//! Determinism of the concurrent batch query engine: a batch run must
//! return, for every query, exactly the neighbors sequential search
//! returns, and the outcome must not depend on the worker-thread count —
//! for the exact backend and the approximate backend alike.

use std::sync::Arc;

use brepartition::prelude::*;

fn hierarchical_workload(n: usize, queries: usize) -> (DenseDataset, Vec<Vec<f64>>) {
    let data =
        HierarchicalSpec { n, dim: 24, clusters: 12, blocks: 6, ..Default::default() }.generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, queries, 0.02, 0xE17);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();
    (data, queries)
}

fn build_index(data: &DenseDataset) -> BrePartitionIndex {
    BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        data,
        &BrePartitionConfig::default()
            .with_partitions(6)
            .with_leaf_capacity(16)
            .with_page_size(4096),
    )
    .unwrap()
}

/// Acceptance criterion: `run_batch` over ≥ 256 queries on a hierarchical
/// Itakura-Saito dataset returns results identical to sequential
/// `index.knn` calls.
#[test]
fn batch_results_match_sequential_knn_over_256_queries() {
    let (data, queries) = hierarchical_workload(2_000, 256);
    assert!(queries.len() >= 256);
    let index = build_index(&data);
    let k = 10;

    let sequential: Vec<Vec<(PointId, f64)>> =
        queries.iter().map(|q| index.knn(q, k).unwrap().neighbors).collect();

    let engine = QueryEngine::with_config(
        Arc::new(BrePartitionBackend::exact(index)),
        EngineConfig::default().with_threads(4),
    )
    .unwrap();
    let batch = engine.run_batch(&queries, k).unwrap();
    assert_eq!(batch.outcomes.len(), queries.len());
    for (qi, (outcome, expected)) in batch.outcomes.iter().zip(sequential.iter()).enumerate() {
        assert_eq!(&outcome.neighbors, expected, "query {qi} diverged from sequential knn");
    }
    assert_eq!(batch.report.queries, 256);
    assert_eq!(batch.report.k, k);
    assert!(batch.report.qps > 0.0);
    assert!(batch.report.latency.p50_ms <= batch.report.latency.p95_ms);
    assert!(batch.report.latency.p95_ms <= batch.report.latency.p99_ms);
    assert!(batch.report.latency.p99_ms <= batch.report.latency.max_ms);
}

/// One thread and N threads must return identical neighbor sets for every
/// query — exact backend.
#[test]
fn exact_backend_is_thread_count_invariant() {
    let (data, queries) = hierarchical_workload(1_200, 256);
    let index = build_index(&data);
    let backend = Arc::new(BrePartitionBackend::exact(index));

    let single =
        QueryEngine::with_config(backend.clone(), EngineConfig::default().with_threads(1)).unwrap();
    let multi = QueryEngine::with_config(backend, EngineConfig::default().with_threads(8)).unwrap();
    let a = single.run_batch(&queries, 12).unwrap();
    let b = multi.run_batch(&queries, 12).unwrap();
    assert_eq!(a.report.threads, 1);
    assert_eq!(b.report.threads, 8);
    for (qi, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.neighbors, y.neighbors, "query {qi} depends on thread count");
        assert_eq!(x.io, y.io, "query {qi}: cold-scratch I/O depends on thread count");
        assert_eq!(x.candidates, y.candidates);
    }
}

/// One thread and N threads must return identical neighbor sets for every
/// query — approximate backend (the shrink coefficient is a pure function
/// of the query, so ABP is deterministic too).
#[test]
fn approximate_backend_is_thread_count_invariant() {
    let (data, queries) = hierarchical_workload(1_200, 256);
    let index = build_index(&data);
    let backend =
        Arc::new(BrePartitionBackend::approximate(index, ApproximateConfig::with_probability(0.9)));

    let single =
        QueryEngine::with_config(backend.clone(), EngineConfig::default().with_threads(1)).unwrap();
    let multi = QueryEngine::with_config(backend, EngineConfig::default().with_threads(8)).unwrap();
    let a = single.run_batch(&queries, 12).unwrap();
    let b = multi.run_batch(&queries, 12).unwrap();
    for (qi, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.neighbors, y.neighbors, "query {qi} depends on thread count");
    }
}

/// The baseline backends go through the same engine and stay exact
/// (constructed through the spec-driven façade).
#[test]
fn baseline_backends_serve_batches_exactly() {
    let (data, queries) = hierarchical_workload(800, 64);
    let k = 8;
    let kind = DivergenceKind::ItakuraSaito;
    let truth = ground_truth_knn(kind, &data, &DenseDataset::from_rows(&queries).unwrap(), k, 4);

    let backends: Vec<Arc<dyn SearchBackend>> = vec![
        Index::build(&IndexSpec::bbtree(kind).with_leaf_capacity(16).with_page_size(4096), &data)
            .unwrap()
            .backend(),
        Index::build(&IndexSpec::vafile(kind), &data).unwrap().backend(),
    ];
    for backend in backends {
        let name = backend.name().to_string();
        let engine =
            QueryEngine::with_config(backend, EngineConfig::default().with_threads(4)).unwrap();
        let batch = engine.run_batch(&queries, k).unwrap();
        for (qi, outcome) in batch.outcomes.iter().enumerate() {
            let expected = truth.neighbors_of(qi);
            assert_eq!(outcome.neighbors.len(), expected.len(), "{name} query {qi}");
            for (g, e) in outcome.neighbors.iter().zip(expected.iter()) {
                assert!(
                    (g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()),
                    "{name} query {qi}: {} vs {}",
                    g.1,
                    e.1
                );
            }
        }
    }
}

/// The delta overlay keeps both engine guarantees under mutation: results
/// are thread-count invariant, and an engine built over a serving snapshot
/// keeps answering from that snapshot while the index mutates underneath —
/// a batch never observes a half-applied write.
#[test]
fn delta_overlay_is_thread_count_invariant_and_snapshot_consistent() {
    let (data, queries) = hierarchical_workload(800, 64);
    let index = Index::build(
        &IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_partitions(6)
            .with_leaf_capacity(16)
            .with_page_size(4096),
        &data,
    )
    .unwrap();
    let near_first: Vec<f64> = queries[0].iter().map(|v| v * 0.999).collect();
    let inserted = index.insert(&near_first).unwrap();
    index.delete(PointId(3)).unwrap();

    // Thread-count invariance through the overlay.
    let snapshot = index.backend();
    assert!(snapshot.name().ends_with("+Δ"), "writes pending: serving must overlay");
    let one = QueryEngine::with_config(snapshot.clone(), EngineConfig::default().with_threads(1))
        .unwrap()
        .run_batch(&queries, 8)
        .unwrap();
    let four = QueryEngine::with_config(snapshot.clone(), EngineConfig::default().with_threads(4))
        .unwrap()
        .run_batch(&queries, 8)
        .unwrap();
    for (qi, (a, b)) in one.outcomes.iter().zip(four.outcomes.iter()).enumerate() {
        assert_eq!(a.neighbors, b.neighbors, "query {qi}: overlay results depend on threads");
        assert_eq!(a.io, b.io, "query {qi}: overlay I/O depends on threads");
    }
    assert!(one.outcomes[0].neighbors.iter().any(|(id, _)| *id == inserted));

    // Snapshot consistency: mutating the index does not disturb an engine
    // already holding the snapshot; a fresh snapshot sees the new state.
    let frozen =
        QueryEngine::with_config(snapshot, EngineConfig::default().with_threads(2)).unwrap();
    index.delete(inserted).unwrap();
    let replay = frozen.run_batch(&queries, 8).unwrap();
    for (qi, (a, b)) in one.outcomes.iter().zip(replay.outcomes.iter()).enumerate() {
        assert_eq!(a.neighbors, b.neighbors, "query {qi}: the frozen snapshot drifted");
    }
    let fresh = QueryEngine::with_config(index.backend(), EngineConfig::default().with_threads(2))
        .unwrap()
        .run_batch(&queries, 8)
        .unwrap();
    assert!(
        fresh.outcomes[0].neighbors.iter().all(|(id, _)| *id != inserted),
        "a fresh snapshot must see the delete"
    );
}

/// The sharded serving tier inherits both invariances at once: capacity-mode
/// answers are bit-identical to the unsharded index for every shard count,
/// under every fan-out thread budget.
#[test]
fn sharded_capacity_is_shard_count_and_thread_budget_invariant() {
    let (data, queries) = hierarchical_workload(900, 96);
    let k = 9;
    let base = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
        .with_partitions(6)
        .with_leaf_capacity(16)
        .with_page_size(4096);
    let request = Request::uniform(&queries, k);
    let reference = Index::build(&base, &data).unwrap().run(&request).unwrap();

    for shards in [1usize, 2, 3, 5] {
        let sharded = ShardedIndex::build(&ShardSpec::capacity(base, shards), &data).unwrap();
        for budget in [1usize, 8] {
            let got = sharded.run_with_budget(&request, budget).unwrap();
            for (qi, (g, w)) in got.outcomes.iter().zip(reference.outcomes.iter()).enumerate() {
                let ctx = format!("{shards} shards, budget {budget}, query {qi}");
                assert_eq!(g.neighbors.len(), w.neighbors.len(), "{ctx}: k");
                for (rank, ((gid, gd), (wid, wd))) in
                    g.neighbors.iter().zip(w.neighbors.iter()).enumerate()
                {
                    assert_eq!(gid, wid, "{ctx}, rank {rank}: neighbor ids");
                    assert_eq!(
                        gd.to_bits(),
                        wd.to_bits(),
                        "{ctx}, rank {rank}: distance bits ({gd} vs {wd})"
                    );
                }
            }
        }
    }
}

/// Forest mode is deterministic too: every replica is a deterministic build
/// and the `(distance, id)` merge is a pure function of the replica answers,
/// so merged results cannot depend on the fan-out budget.
#[test]
fn sharded_forest_is_thread_budget_invariant() {
    let (data, queries) = hierarchical_workload(700, 64);
    let base = IndexSpec::approximate(DivergenceKind::ItakuraSaito)
        .with_probability(0.6)
        .with_partitions(6)
        .with_leaf_capacity(16)
        .with_page_size(4096);
    let forest = ShardedIndex::build(&ShardSpec::forest(base, 4), &data).unwrap();
    let request = Request::uniform(&queries, 8);
    let one = forest.run_with_budget(&request, 1).unwrap();
    let many = forest.run_with_budget(&request, 8).unwrap();
    for (qi, (a, b)) in one.outcomes.iter().zip(many.outcomes.iter()).enumerate() {
        assert_eq!(a.neighbors, b.neighbors, "query {qi}: forest merge depends on budget");
    }
}
