//! Equivalence suite for the prepared-query decomposed divergence kernels.
//!
//! Two layers of pinning:
//!
//! 1. **Scalar equivalence** — for every divergence kind × dimensionality
//!    {2, 50, 100}, seeded workloads (including near-zero coordinates, the
//!    KL/Itakura-Saito edge regime where `φ` blows up) assert that the
//!    prepared kernel `Φ(x) + c_q − ⟨∇φ(q), x⟩` agrees with the naive
//!    `divergence()` within `1e-10` (relative). The two evaluations
//!    reassociate floating-point sums differently, so exact bit equality is
//!    not expected — `1e-10` pins them to far below any distance gap that
//!    could reorder neighbors in these workloads.
//! 2. **Neighbor-ID identity** — every *exact* method (BP, BBT, VAF),
//!    driven through the façade on the round-trip workload, returns exactly
//!    the ground-truth neighbor IDs, before and after a save/open cycle
//!    (which exercises the persisted Φ column), and after migrating a
//!    directory that predates the column.

use brepartition::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded value in the divergence's comfortable domain; every 7th
/// coordinate is near-zero (1e-4 .. 1.1e-4) to exercise the KL /
/// Itakura-Saito edge where `φ(t) = −ln t` / `t ln t` is largest.
fn coordinate(kind: DivergenceKind, i: usize, rng: &mut StdRng) -> f64 {
    let u = rng.gen_range(0.0..1.0);
    match kind {
        DivergenceKind::SquaredEuclidean => u * 10.0 - 5.0,
        // Exponential: keep |t| small so Φ(x) stays ~1e2 and the
        // decomposition's cancellation stays far below the 1e-10 pin.
        DivergenceKind::Exponential => u * 5.0 - 2.0,
        DivergenceKind::ItakuraSaito | DivergenceKind::GeneralizedI => {
            if i % 7 == 3 {
                1e-4 * (1.0 + 0.1 * u)
            } else {
                0.05 + u * 8.0
            }
        }
    }
}

#[test]
fn prepared_kernel_matches_naive_divergence_for_every_kind_and_dim() {
    for (ki, kind) in DivergenceKind::ALL.into_iter().enumerate() {
        for dim in [2usize, 50, 100] {
            // Distinct stream per (kind, dim) cell.
            let mut rng =
                StdRng::seed_from_u64(0xC0FFEE ^ ((dim as u64) << 8) ^ ((ki as u64 + 1) * 0x9E37));
            for trial in 0..25 {
                let x: Vec<f64> = (0..dim).map(|i| coordinate(kind, i, &mut rng)).collect();
                let q: Vec<f64> = (0..dim).map(|i| coordinate(kind, i + 1, &mut rng)).collect();
                let prepared = kind.prepare_query(&q);
                let fast = prepared.distance(kind.phi_sum(&x), &x);
                let naive = kind.divergence(&x, &q);
                assert!(
                    (fast - naive).abs() <= 1e-10 * (1.0 + naive.abs()),
                    "{kind} d={dim} trial={trial}: prepared {fast} vs naive {naive} \
                     (delta {})",
                    (fast - naive).abs()
                );
            }
            // The self-distance collapses to (numerically) zero as well.
            let q: Vec<f64> = (0..dim).map(|i| coordinate(kind, i, &mut rng)).collect();
            let prepared = kind.prepare_query(&q);
            let self_d = prepared.distance(kind.phi_sum(&q), &q);
            assert!(self_d.abs() < 1e-9, "{kind} d={dim}: D(q,q) = {self_d}");
        }
    }
}

fn roundtrip_workload() -> (DenseDataset, DenseDataset) {
    let data = HierarchicalSpec { n: 900, dim: 24, clusters: 12, blocks: 6, ..Default::default() }
        .generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, 48, 0.02, 0x4B524E4C);
    (data, workload.queries)
}

/// IDs of one result, as an ordered vector.
fn ids(neighbors: &[(PointId, f64)]) -> Vec<PointId> {
    neighbors.iter().map(|(id, _)| *id).collect()
}

#[test]
fn exact_methods_return_ground_truth_neighbor_ids_through_the_facade() {
    let (data, queries) = roundtrip_workload();
    let k = 10;
    let truth = ground_truth_knn(DivergenceKind::ItakuraSaito, &data, &queries, k, 4);
    let root = std::env::temp_dir().join(format!("prepared-kernels-{}", std::process::id()));

    for method in [Method::BrePartition, Method::BBTree, Method::VaFile] {
        let spec = IndexSpec::new(method, DivergenceKind::ItakuraSaito)
            .with_partitions(6)
            .with_leaf_capacity(16)
            .with_page_size(4096);
        let built = Index::build(&spec, &data).unwrap();
        let dir = root.join(method.short_name());
        built.save(&dir).unwrap();
        let reopened = Index::open(&dir).unwrap();

        for qi in 0..queries.len() {
            let query = queries.row(qi);
            let expected: Vec<PointId> = truth.neighbors_of(qi).iter().map(|n| n.0).collect();
            let a = built.query(&QueryRequest::new(query, k)).unwrap();
            let b = reopened.query(&QueryRequest::new(query, k)).unwrap();
            assert_eq!(ids(&a.neighbors), expected, "{method} query {qi}: built vs ground truth");
            assert_eq!(
                a.neighbors, b.neighbors,
                "{method} query {qi}: the persisted Φ column must round-trip bit-identically"
            );
            for ((_, got), (_, want)) in a.neighbors.iter().zip(truth.neighbors_of(qi).iter()) {
                // 1e-9 relative rather than bit equality: the prepared
                // kernel's 4-wide dot product reassociates the per-dimension
                // sum, shifting the last ulps relative to the naive
                // sequential evaluation the ground truth uses.
                assert!(
                    (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "{method} query {qi}: {got} vs {want}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn bbt_directories_without_a_phi_column_migrate_through_the_facade() {
    let (data, queries) = roundtrip_workload();
    let spec =
        IndexSpec::bbtree(DivergenceKind::ItakuraSaito).with_leaf_capacity(16).with_page_size(4096);
    let built = Index::build(&spec, &data).unwrap();
    let dir = std::env::temp_dir().join(format!("prepared-kernels-mig-{}", std::process::id()));
    built.save(&dir).unwrap();
    // Simulate a directory written before the Φ column existed.
    std::fs::remove_file(dir.join("phi.tbl")).unwrap();
    let migrated = Index::open(&dir).unwrap();
    for qi in 0..8 {
        let query = queries.row(qi);
        let a = built.query(&QueryRequest::new(query, 9)).unwrap();
        let b = migrated.query(&QueryRequest::new(query, 9)).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.io, b.io, "migration must not change query-time I/O");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
