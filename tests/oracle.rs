//! The mutability oracle: randomized interleavings of
//! insert/delete/compact/query (plus mid-stream save → open cycles) checked
//! against a brute-force exact-scan oracle, for every supported
//! `(Method, DivergenceKind)` pair.
//!
//! The oracle is the always-correct fallback for small collections: it keeps
//! the live set as `external id → row` and answers kNN by scanning it with
//! the plain divergence, sorted by `(distance, id)`. After *any* interleaving
//! of operations the index must return identical neighbor ids with distances
//! within `1e-10`, before and after a save/open round-trip.
//!
//! `proptest` is not available in the offline build environment, so the
//! interleavings are driven by a seeded `ChaCha8Rng` (the pattern of
//! `tests/properties.rs`): deterministic, reproducible, and re-runnable
//! under a different seed via `BREPARTITION_ORACLE_SEED` (CI runs two).
//!
//! The approximate method runs at probability 1.0, where the shrink
//! coefficient is exactly 1 and the approximate search is bit-identical to
//! the exact one — the only operating point where an oracle comparison is
//! sound for ABP. Pairs rejected by spec validation (BP/ABP over the
//! non-cumulative Generalized-I divergence) are asserted to be exactly the
//! known-unsupported ones and skipped.

use std::collections::BTreeMap;
use std::path::PathBuf;

use brepartition::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 8;
const INITIAL_POINTS: usize = 48;
const OPS: usize = 110;
const DEFAULT_SEED: u64 = 0x0D15EA5E;

fn seed_from_env() -> u64 {
    match std::env::var("BREPARTITION_ORACLE_SEED") {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("BREPARTITION_ORACLE_SEED must be a u64, got {raw:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// The brute-force reference: the live set, scanned exactly.
struct Oracle {
    kind: DivergenceKind,
    live: BTreeMap<u32, Vec<f64>>,
}

impl Oracle {
    fn knn(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> =
            self.live.iter().map(|(&id, row)| (id, self.kind.divergence(row, query))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Strictly positive rows keep every divergence (ISD, GI) in domain, and
/// the modest range keeps exponential-distance magnitudes sane.
fn random_row(rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(0.2..8.0)).collect()
}

fn spec_for(method: Method, kind: DivergenceKind) -> IndexSpec {
    let spec = IndexSpec::new(method, kind)
        .with_partitions(2)
        .with_leaf_capacity(8)
        .with_page_size(1024)
        .with_sample_size(64)
        .with_seed(0x0B5);
    if method == Method::Approximate {
        // p = 1.0 is the exactness point of the approximate search.
        spec.with_probability(1.0)
    } else {
        spec
    }
}

fn temp_root(method: Method, kind: DivergenceKind, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "brepartition-oracle-{}-{}-{}-{seed:x}",
        std::process::id(),
        method.short_name(),
        kind.short_name()
    ))
}

#[track_caller]
fn assert_matches_oracle(ctx: &str, index: &Index, oracle: &Oracle, query: &[f64], k: usize) {
    let got = index.query(&QueryRequest::new(query, k)).unwrap().neighbors;
    let want = oracle.knn(query, k);
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
    assert_eq!(got_ids, want_ids, "{ctx}: neighbor ids diverged from brute force");
    for (rank, ((_, gd), (_, wd))) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
            "{ctx}: rank {rank} distance {gd} vs brute-force {wd}"
        );
    }
}

fn run_interleaving(method: Method, kind: DivergenceKind, seed: u64) {
    let spec = spec_for(method, kind);
    if spec.validate().is_err() {
        assert!(
            matches!(method, Method::BrePartition | Method::Approximate)
                && kind == DivergenceKind::GeneralizedI,
            "only BP/ABP over GI may be unsupported, got {method}/{kind}"
        );
        return;
    }
    let label = format!("{}/{}", method.short_name(), kind.short_name());
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ ((method.tag_for_seed() as u64) << 32 | kind.short_name().len() as u64)
            ^ (kind as u64) << 8,
    );

    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let mut index = Index::build(&spec, &data).unwrap();
    let mut oracle = Oracle {
        kind,
        live: rows.iter().enumerate().map(|(i, r)| (i as u32, r.clone())).collect(),
    };
    let mut issued: Vec<u32> = (0..INITIAL_POINTS as u32).collect();
    let mut expected_next = INITIAL_POINTS as u32;
    let root = temp_root(method, kind, seed);

    for op in 0..OPS {
        let ctx = format!("{label} op {op}");
        match rng.gen_range(0..100u32) {
            // Insert a fresh row; ids must be issued monotonically.
            0..=37 => {
                let row = random_row(&mut rng);
                let id = index.insert(&row).unwrap();
                assert_eq!(id.0, expected_next, "{ctx}: id issue order");
                expected_next += 1;
                oracle.live.insert(id.0, row);
                issued.push(id.0);
            }
            // Delete: a previously issued id (live or already dead), or
            // occasionally a never-issued one; the reported liveness must
            // agree with the oracle either way.
            38..=57 => {
                let target = if rng.gen_range(0..8u32) == 0 {
                    expected_next + rng.gen_range(1..10u32)
                } else {
                    issued[rng.gen_range(0..issued.len())]
                };
                let got = index.delete(PointId(target)).unwrap();
                let want = oracle.live.remove(&target).is_some();
                assert_eq!(got, want, "{ctx}: delete({target}) liveness");
            }
            // Compact: fold the delta into a rebuilt backend. External ids
            // must survive, so the oracle is untouched.
            58..=65 => {
                if oracle.live.len() >= 4 {
                    index.compact().unwrap();
                    assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after compact");
                }
            }
            // Save → open mid-stream: the delta log must round-trip the
            // whole mutable state.
            66..=73 => {
                let dir = root.join(format!("step{op}"));
                index.save(&dir).unwrap();
                index = Index::open(&dir).unwrap();
                std::fs::remove_dir_all(&dir).unwrap();
                assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after reopen");
            }
            // Query against the brute-force oracle (k may exceed the live
            // count; both sides then return everything).
            _ => {
                let query = random_row(&mut rng);
                let k = rng.gen_range(1..11usize);
                assert_matches_oracle(&ctx, &index, &oracle, &query, k);
            }
        }
    }

    // Final acceptance sweep: a query battery, a save/open round-trip, the
    // same battery again (identical answers demanded on the reopened
    // index), and the batch path over the reopened serving snapshot.
    while oracle.live.len() < 4 {
        let row = random_row(&mut rng);
        let id = index.insert(&row).unwrap();
        oracle.live.insert(id.0, row);
    }
    let finals: Vec<Vec<f64>> = (0..6).map(|_| random_row(&mut rng)).collect();
    for (qi, q) in finals.iter().enumerate() {
        assert_matches_oracle(&format!("{label} final query {qi}"), &index, &oracle, q, 5);
    }
    let dir = root.join("final");
    index.save(&dir).unwrap();
    let reopened = Index::open(&dir).unwrap();
    assert_eq!(reopened.len(), oracle.live.len(), "{label}: live count after final reopen");
    for (qi, q) in finals.iter().enumerate() {
        assert_matches_oracle(&format!("{label} reopened query {qi}"), &reopened, &oracle, q, 5);
    }
    let batch = reopened.run(&Request::uniform(&finals, 5)).unwrap();
    for (qi, outcome) in batch.outcomes.iter().enumerate() {
        let want = oracle.knn(&finals[qi], 5);
        let got_ids: Vec<u32> = outcome.neighbors.iter().map(|(id, _)| id.0).collect();
        let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
        assert_eq!(got_ids, want_ids, "{label} batch query {qi}: ids diverged from brute force");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[track_caller]
fn assert_sharded_matches_oracle(
    ctx: &str,
    index: &ShardedIndex,
    oracle: &Oracle,
    query: &[f64],
    k: usize,
) {
    let got = index.query(&QueryRequest::new(query, k)).unwrap().neighbors;
    let want = oracle.knn(query, k);
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
    assert_eq!(got_ids, want_ids, "{ctx}: neighbor ids diverged from brute force");
    for (rank, ((_, gd), (_, wd))) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
            "{ctx}: rank {rank} distance {gd} vs brute-force {wd}"
        );
    }
}

/// The sharded mirror of [`run_interleaving`]: the same op mix driven
/// through a `ShardedIndex`, so routed inserts/deletes, per-shard compaction
/// and the sharded directory layout all face the brute-force oracle.
fn run_sharded_interleaving(mode: ShardMode, method: Method, kind: DivergenceKind, seed: u64) {
    let base = spec_for(method, kind);
    let spec = match mode {
        ShardMode::Capacity => ShardSpec::capacity(base, 3),
        _ => ShardSpec::forest(base, 3),
    };
    if spec.validate().is_err() {
        assert!(
            matches!(method, Method::BrePartition | Method::Approximate)
                && kind == DivergenceKind::GeneralizedI,
            "only BP/ABP over GI may be unsupported, got {method}/{kind}"
        );
        return;
    }
    let label = format!("sharded-{}-{}/{}", mode.name(), method.short_name(), kind.short_name());
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed.rotate_left(17)
            ^ ((method.tag_for_seed() as u64) << 32 | kind.short_name().len() as u64)
            ^ (kind as u64) << 8,
    );

    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let mut index = ShardedIndex::build(&spec, &data).unwrap();
    let mut oracle = Oracle {
        kind,
        live: rows.iter().enumerate().map(|(i, r)| (i as u32, r.clone())).collect(),
    };
    let mut issued: Vec<u32> = (0..INITIAL_POINTS as u32).collect();
    let mut expected_next = INITIAL_POINTS as u32;
    let root = temp_root(method, kind, seed).join(format!("sharded-{}", mode.name()));

    for op in 0..OPS {
        let ctx = format!("{label} op {op}");
        match rng.gen_range(0..100u32) {
            0..=37 => {
                let row = random_row(&mut rng);
                let id = index.insert(&row).unwrap();
                assert_eq!(id.0, expected_next, "{ctx}: global id issue order");
                expected_next += 1;
                oracle.live.insert(id.0, row);
                issued.push(id.0);
            }
            38..=57 => {
                let target = if rng.gen_range(0..8u32) == 0 {
                    expected_next + rng.gen_range(1..10u32)
                } else {
                    issued[rng.gen_range(0..issued.len())]
                };
                let got = index.delete(PointId(target)).unwrap();
                let want = oracle.live.remove(&target).is_some();
                assert_eq!(got, want, "{ctx}: delete({target}) liveness");
            }
            58..=65 => {
                if oracle.live.len() >= 4 {
                    index.compact().unwrap();
                    assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after compact");
                }
            }
            66..=73 => {
                let dir = root.join(format!("step{op}"));
                index.save(&dir).unwrap();
                index = ShardedIndex::open(&dir).unwrap();
                std::fs::remove_dir_all(&dir).unwrap();
                assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after reopen");
            }
            _ => {
                let query = random_row(&mut rng);
                let k = rng.gen_range(1..11usize);
                assert_sharded_matches_oracle(&ctx, &index, &oracle, &query, k);
            }
        }
    }

    // Final sweep mirrors the unsharded one, plus the fan-out batch path
    // under two different thread budgets (answers must not depend on it).
    while oracle.live.len() < 4 {
        let row = random_row(&mut rng);
        let id = index.insert(&row).unwrap();
        oracle.live.insert(id.0, row);
    }
    let finals: Vec<Vec<f64>> = (0..6).map(|_| random_row(&mut rng)).collect();
    for (qi, q) in finals.iter().enumerate() {
        assert_sharded_matches_oracle(&format!("{label} final query {qi}"), &index, &oracle, q, 5);
    }
    let dir = root.join("final");
    index.save(&dir).unwrap();
    let reopened = ShardedIndex::open(&dir).unwrap();
    assert_eq!(reopened.len(), oracle.live.len(), "{label}: live count after final reopen");
    for budget in [1usize, 4] {
        let batch = reopened.run_with_budget(&Request::uniform(&finals, 5), budget).unwrap();
        for (qi, outcome) in batch.outcomes.iter().enumerate() {
            let want = oracle.knn(&finals[qi], 5);
            let got_ids: Vec<u32> = outcome.neighbors.iter().map(|(id, _)| id.0).collect();
            let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
            assert_eq!(
                got_ids, want_ids,
                "{label} batch query {qi} (budget {budget}): ids diverged from brute force"
            );
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Helper trait: a stable per-method salt for the RNG stream (kept local so
/// the test does not depend on the crate-private envelope tags).
trait MethodSeed {
    fn tag_for_seed(&self) -> u8;
}

impl MethodSeed for Method {
    fn tag_for_seed(&self) -> u8 {
        match self {
            Method::BrePartition => 1,
            Method::Approximate => 2,
            Method::BBTree => 3,
            Method::VaFile => 4,
            _ => 0,
        }
    }
}

#[test]
fn oracle_all_methods_and_kinds() {
    let seed = seed_from_env();
    for method in Method::ALL {
        for kind in DivergenceKind::ALL {
            run_interleaving(method, kind, seed);
        }
    }
}

#[test]
fn oracle_sharded_capacity_all_methods_and_kinds() {
    let seed = seed_from_env();
    for method in Method::ALL {
        for kind in DivergenceKind::ALL {
            run_sharded_interleaving(ShardMode::Capacity, method, kind, seed);
        }
    }
}

/// Forest replicas of an *exact* backend each return the true top-k, so the
/// deduplicated merge is the true top-k too and the oracle comparison stays
/// sound (ABP qualifies only at its p = 1.0 exactness point).
#[test]
fn oracle_sharded_forest_over_exact_replicas() {
    let seed = seed_from_env();
    for (method, kind) in [
        (Method::BBTree, DivergenceKind::ItakuraSaito),
        (Method::VaFile, DivergenceKind::SquaredEuclidean),
        (Method::Approximate, DivergenceKind::Exponential),
    ] {
        run_sharded_interleaving(ShardMode::Forest, method, kind, seed);
    }
}
