//! The mutability oracle: randomized interleavings of
//! insert/delete/compact/query (plus mid-stream save → open cycles) checked
//! against a brute-force exact-scan oracle, for every supported
//! `(Method, DivergenceKind)` pair.
//!
//! The oracle is the always-correct fallback for small collections: it keeps
//! the live set as `external id → row` and answers kNN by scanning it with
//! the plain divergence, sorted by `(distance, id)`. After *any* interleaving
//! of operations the index must return identical neighbor ids with distances
//! within `1e-10`, before and after a save/open round-trip.
//!
//! `proptest` is not available in the offline build environment, so the
//! interleavings are driven by a seeded `ChaCha8Rng` (the pattern of
//! `tests/properties.rs`): deterministic, reproducible, and re-runnable
//! under a different seed via `BREPARTITION_ORACLE_SEED` (CI runs two).
//!
//! The approximate method runs at probability 1.0, where the shrink
//! coefficient is exactly 1 and the approximate search is bit-identical to
//! the exact one — the only operating point where an oracle comparison is
//! sound for ABP. Pairs rejected by spec validation (BP/ABP over the
//! non-cumulative Generalized-I divergence) are asserted to be exactly the
//! known-unsupported ones and skipped.

use std::collections::BTreeMap;
use std::path::PathBuf;

use brepartition::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 8;
const INITIAL_POINTS: usize = 48;
const OPS: usize = 110;
const DEFAULT_SEED: u64 = 0x0D15EA5E;

fn seed_from_env() -> u64 {
    match std::env::var("BREPARTITION_ORACLE_SEED") {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("BREPARTITION_ORACLE_SEED must be a u64, got {raw:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// The brute-force reference: the live set, scanned exactly.
struct Oracle {
    kind: DivergenceKind,
    live: BTreeMap<u32, Vec<f64>>,
}

impl Oracle {
    fn knn(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> =
            self.live.iter().map(|(&id, row)| (id, self.kind.divergence(row, query))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Strictly positive rows keep every divergence (ISD, GI) in domain, and
/// the modest range keeps exponential-distance magnitudes sane.
fn random_row(rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..DIM).map(|_| rng.gen_range(0.2..8.0)).collect()
}

fn spec_for(method: Method, kind: DivergenceKind) -> IndexSpec {
    let spec = IndexSpec::new(method, kind)
        .with_partitions(2)
        .with_leaf_capacity(8)
        .with_page_size(1024)
        .with_sample_size(64)
        .with_seed(0x0B5);
    if method == Method::Approximate {
        // p = 1.0 is the exactness point of the approximate search.
        spec.with_probability(1.0)
    } else {
        spec
    }
}

fn temp_root(method: Method, kind: DivergenceKind, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "brepartition-oracle-{}-{}-{}-{seed:x}",
        std::process::id(),
        method.short_name(),
        kind.short_name()
    ))
}

#[track_caller]
fn assert_matches_oracle(ctx: &str, index: &Index, oracle: &Oracle, query: &[f64], k: usize) {
    let got = index.query(&QueryRequest::new(query, k)).unwrap().neighbors;
    let want = oracle.knn(query, k);
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
    assert_eq!(got_ids, want_ids, "{ctx}: neighbor ids diverged from brute force");
    for (rank, ((_, gd), (_, wd))) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
            "{ctx}: rank {rank} distance {gd} vs brute-force {wd}"
        );
    }
}

fn run_interleaving(method: Method, kind: DivergenceKind, seed: u64) {
    let spec = spec_for(method, kind);
    if spec.validate().is_err() {
        assert!(
            matches!(method, Method::BrePartition | Method::Approximate)
                && kind == DivergenceKind::GeneralizedI,
            "only BP/ABP over GI may be unsupported, got {method}/{kind}"
        );
        return;
    }
    let label = format!("{}/{}", method.short_name(), kind.short_name());
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ ((method.tag_for_seed() as u64) << 32 | kind.short_name().len() as u64)
            ^ (kind as u64) << 8,
    );

    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let mut index = Index::build(&spec, &data).unwrap();
    let mut oracle = Oracle {
        kind,
        live: rows.iter().enumerate().map(|(i, r)| (i as u32, r.clone())).collect(),
    };
    let mut issued: Vec<u32> = (0..INITIAL_POINTS as u32).collect();
    let mut expected_next = INITIAL_POINTS as u32;
    let root = temp_root(method, kind, seed);

    for op in 0..OPS {
        let ctx = format!("{label} op {op}");
        match rng.gen_range(0..100u32) {
            // Insert a fresh row; ids must be issued monotonically.
            0..=37 => {
                let row = random_row(&mut rng);
                let id = index.insert(&row).unwrap();
                assert_eq!(id.0, expected_next, "{ctx}: id issue order");
                expected_next += 1;
                oracle.live.insert(id.0, row);
                issued.push(id.0);
            }
            // Delete: a previously issued id (live or already dead), or
            // occasionally a never-issued one; the reported liveness must
            // agree with the oracle either way.
            38..=57 => {
                let target = if rng.gen_range(0..8u32) == 0 {
                    expected_next + rng.gen_range(1..10u32)
                } else {
                    issued[rng.gen_range(0..issued.len())]
                };
                let got = index.delete(PointId(target)).unwrap();
                let want = oracle.live.remove(&target).is_some();
                assert_eq!(got, want, "{ctx}: delete({target}) liveness");
            }
            // Compact: fold the delta into a rebuilt backend. External ids
            // must survive, so the oracle is untouched.
            58..=65 => {
                if oracle.live.len() >= 4 {
                    index.compact().unwrap();
                    assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after compact");
                }
            }
            // Save → open mid-stream: the delta log must round-trip the
            // whole mutable state.
            66..=73 => {
                let dir = root.join(format!("step{op}"));
                index.save(&dir).unwrap();
                index = Index::open(&dir).unwrap();
                std::fs::remove_dir_all(&dir).unwrap();
                assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after reopen");
            }
            // Query against the brute-force oracle (k may exceed the live
            // count; both sides then return everything).
            _ => {
                let query = random_row(&mut rng);
                let k = rng.gen_range(1..11usize);
                assert_matches_oracle(&ctx, &index, &oracle, &query, k);
            }
        }
    }

    // Final acceptance sweep: a query battery, a save/open round-trip, the
    // same battery again (identical answers demanded on the reopened
    // index), and the batch path over the reopened serving snapshot.
    while oracle.live.len() < 4 {
        let row = random_row(&mut rng);
        let id = index.insert(&row).unwrap();
        oracle.live.insert(id.0, row);
    }
    let finals: Vec<Vec<f64>> = (0..6).map(|_| random_row(&mut rng)).collect();
    for (qi, q) in finals.iter().enumerate() {
        assert_matches_oracle(&format!("{label} final query {qi}"), &index, &oracle, q, 5);
    }
    let dir = root.join("final");
    index.save(&dir).unwrap();
    let reopened = Index::open(&dir).unwrap();
    assert_eq!(reopened.len(), oracle.live.len(), "{label}: live count after final reopen");
    for (qi, q) in finals.iter().enumerate() {
        assert_matches_oracle(&format!("{label} reopened query {qi}"), &reopened, &oracle, q, 5);
    }
    let batch = reopened.run(&Request::uniform(&finals, 5)).unwrap();
    for (qi, outcome) in batch.outcomes.iter().enumerate() {
        let want = oracle.knn(&finals[qi], 5);
        let got_ids: Vec<u32> = outcome.neighbors.iter().map(|(id, _)| id.0).collect();
        let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
        assert_eq!(got_ids, want_ids, "{label} batch query {qi}: ids diverged from brute force");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[track_caller]
fn assert_sharded_matches_oracle(
    ctx: &str,
    index: &ShardedIndex,
    oracle: &Oracle,
    query: &[f64],
    k: usize,
) {
    let got = index.query(&QueryRequest::new(query, k)).unwrap().neighbors;
    let want = oracle.knn(query, k);
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
    assert_eq!(got_ids, want_ids, "{ctx}: neighbor ids diverged from brute force");
    for (rank, ((_, gd), (_, wd))) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
            "{ctx}: rank {rank} distance {gd} vs brute-force {wd}"
        );
    }
}

/// The sharded mirror of [`run_interleaving`]: the same op mix driven
/// through a `ShardedIndex`, so routed inserts/deletes, per-shard compaction
/// and the sharded directory layout all face the brute-force oracle.
fn run_sharded_interleaving(mode: ShardMode, method: Method, kind: DivergenceKind, seed: u64) {
    let base = spec_for(method, kind);
    let spec = match mode {
        ShardMode::Capacity => ShardSpec::capacity(base, 3),
        _ => ShardSpec::forest(base, 3),
    };
    if spec.validate().is_err() {
        assert!(
            matches!(method, Method::BrePartition | Method::Approximate)
                && kind == DivergenceKind::GeneralizedI,
            "only BP/ABP over GI may be unsupported, got {method}/{kind}"
        );
        return;
    }
    let label = format!("sharded-{}-{}/{}", mode.name(), method.short_name(), kind.short_name());
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed.rotate_left(17)
            ^ ((method.tag_for_seed() as u64) << 32 | kind.short_name().len() as u64)
            ^ (kind as u64) << 8,
    );

    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let mut index = ShardedIndex::build(&spec, &data).unwrap();
    let mut oracle = Oracle {
        kind,
        live: rows.iter().enumerate().map(|(i, r)| (i as u32, r.clone())).collect(),
    };
    let mut issued: Vec<u32> = (0..INITIAL_POINTS as u32).collect();
    let mut expected_next = INITIAL_POINTS as u32;
    let root = temp_root(method, kind, seed).join(format!("sharded-{}", mode.name()));

    for op in 0..OPS {
        let ctx = format!("{label} op {op}");
        match rng.gen_range(0..100u32) {
            0..=37 => {
                let row = random_row(&mut rng);
                let id = index.insert(&row).unwrap();
                assert_eq!(id.0, expected_next, "{ctx}: global id issue order");
                expected_next += 1;
                oracle.live.insert(id.0, row);
                issued.push(id.0);
            }
            38..=57 => {
                let target = if rng.gen_range(0..8u32) == 0 {
                    expected_next + rng.gen_range(1..10u32)
                } else {
                    issued[rng.gen_range(0..issued.len())]
                };
                let got = index.delete(PointId(target)).unwrap();
                let want = oracle.live.remove(&target).is_some();
                assert_eq!(got, want, "{ctx}: delete({target}) liveness");
            }
            58..=65 => {
                if oracle.live.len() >= 4 {
                    index.compact().unwrap();
                    assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after compact");
                }
            }
            66..=73 => {
                let dir = root.join(format!("step{op}"));
                index.save(&dir).unwrap();
                index = ShardedIndex::open(&dir).unwrap();
                std::fs::remove_dir_all(&dir).unwrap();
                assert_eq!(index.len(), oracle.live.len(), "{ctx}: live count after reopen");
            }
            _ => {
                let query = random_row(&mut rng);
                let k = rng.gen_range(1..11usize);
                assert_sharded_matches_oracle(&ctx, &index, &oracle, &query, k);
            }
        }
    }

    // Final sweep mirrors the unsharded one, plus the fan-out batch path
    // under two different thread budgets (answers must not depend on it).
    while oracle.live.len() < 4 {
        let row = random_row(&mut rng);
        let id = index.insert(&row).unwrap();
        oracle.live.insert(id.0, row);
    }
    let finals: Vec<Vec<f64>> = (0..6).map(|_| random_row(&mut rng)).collect();
    for (qi, q) in finals.iter().enumerate() {
        assert_sharded_matches_oracle(&format!("{label} final query {qi}"), &index, &oracle, q, 5);
    }
    let dir = root.join("final");
    index.save(&dir).unwrap();
    let reopened = ShardedIndex::open(&dir).unwrap();
    assert_eq!(reopened.len(), oracle.live.len(), "{label}: live count after final reopen");
    for budget in [1usize, 4] {
        let batch = reopened.run_with_budget(&Request::uniform(&finals, 5), budget).unwrap();
        for (qi, outcome) in batch.outcomes.iter().enumerate() {
            let want = oracle.knn(&finals[qi], 5);
            let got_ids: Vec<u32> = outcome.neighbors.iter().map(|(id, _)| id.0).collect();
            let want_ids: Vec<u32> = want.iter().map(|(id, _)| *id).collect();
            assert_eq!(
                got_ids, want_ids,
                "{label} batch query {qi} (budget {budget}): ids diverged from brute force"
            );
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Helper trait: a stable per-method salt for the RNG stream (kept local so
/// the test does not depend on the crate-private envelope tags).
trait MethodSeed {
    fn tag_for_seed(&self) -> u8;
}

impl MethodSeed for Method {
    fn tag_for_seed(&self) -> u8 {
        match self {
            Method::BrePartition => 1,
            Method::Approximate => 2,
            Method::BBTree => 3,
            Method::VaFile => 4,
            _ => 0,
        }
    }
}

/// One applied mutation of the concurrent run, recorded in application
/// order under the ledger lock (the concurrent analogue of the loadgen
/// mutation log).
enum Applied {
    Insert { id: u32, row: Vec<f64> },
    Delete { id: u32 },
}

/// N mutator threads race query batches against one shared `Index` with
/// background compaction armed on an aggressive trigger. Mutations are
/// applied under a ledger lock (so the ledger's order *is* the application
/// order, exactly like `loadgen::run_open_loop_concurrent`); sampled
/// queries pin the ledger version they executed under. Afterwards a fresh
/// index replays the ledger serially and every sample must come back
/// bit-identical in ids (distances within the oracle tolerance) — however
/// the threads interleaved and however many epoch swaps the compactor
/// performed mid-flight. Finishes with a save → open immediately after a
/// compaction-triggering burst, so persistence during the
/// compaction-requested state is exercised too.
#[test]
fn oracle_concurrent_mutators_match_serial_replay() {
    use std::sync::Mutex;

    let seed = seed_from_env();
    let kind = DivergenceKind::ItakuraSaito;
    let spec = spec_for(Method::BrePartition, kind)
        .with_background_compaction(true)
        .with_compaction_ratios(0.05, 0.05);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC04C);
    let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let index = Index::build(&spec, &data).unwrap();

    struct Ledger {
        live: Vec<u32>,
        dead: Vec<u32>,
        log: Vec<Applied>,
    }
    let ledger = Mutex::new(Ledger {
        live: (0..INITIAL_POINTS as u32).collect(),
        dead: Vec::new(),
        log: Vec::new(),
    });
    // (version, query, k, answered neighbors)
    type Sample = (usize, Vec<f64>, usize, Vec<(u32, f64)>);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

    const MUTATORS: usize = 3;
    const READERS: usize = 2;
    const OPS_PER_MUTATOR: usize = 60;
    const QUERIES_PER_READER: usize = 48;

    std::thread::scope(|scope| {
        for t in 0..MUTATORS {
            let index = &index;
            let ledger = &ledger;
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xA11CE + ((t as u64) << 20)));
            scope.spawn(move || {
                for _ in 0..OPS_PER_MUTATOR {
                    match rng.gen_range(0..8u32) {
                        0..=4 => {
                            let row = random_row(&mut rng);
                            let mut guard = ledger.lock().unwrap();
                            let id = index.insert(&row).unwrap();
                            guard.live.push(id.0);
                            guard.log.push(Applied::Insert { id: id.0, row });
                        }
                        5..=6 => {
                            let mut guard = ledger.lock().unwrap();
                            if guard.live.len() <= 4 {
                                continue;
                            }
                            let slot = rng.gen_range(0..guard.live.len());
                            let id = guard.live.swap_remove(slot);
                            assert!(
                                index.delete(PointId(id)).unwrap(),
                                "ledger said {id} was live"
                            );
                            guard.dead.push(id);
                            guard.log.push(Applied::Delete { id });
                        }
                        // A dead or never-issued delete: must report false
                        // and is deliberately *not* logged — the replay
                        // below only works if these were true no-ops.
                        _ => {
                            let guard = ledger.lock().unwrap();
                            let target = if guard.dead.is_empty() || rng.gen_range(0..2u32) == 0 {
                                u32::MAX - rng.gen_range(0..512u32)
                            } else {
                                guard.dead[rng.gen_range(0..guard.dead.len())]
                            };
                            assert!(
                                !index.delete(PointId(target)).unwrap(),
                                "delete({target}) resurrected a dead id"
                            );
                        }
                    }
                }
            });
        }
        for r in 0..READERS {
            let index = &index;
            let ledger = &ledger;
            let samples = &samples;
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xBEAD + ((r as u64) << 20)));
            scope.spawn(move || {
                for i in 0..QUERIES_PER_READER {
                    let query = random_row(&mut rng);
                    let k = rng.gen_range(1..8usize);
                    if i % 3 == 0 {
                        // Sampled: hold the ledger closed so no mutation
                        // lands between the version read and the query.
                        let guard = ledger.lock().unwrap();
                        let version = guard.log.len();
                        let answer = index.query(&QueryRequest::new(&query, k)).unwrap().neighbors;
                        drop(guard);
                        let answer = answer.into_iter().map(|(id, d)| (id.0, d)).collect();
                        samples.lock().unwrap().push((version, query, k, answer));
                    } else {
                        // Unsampled: no harness lock at all — these run
                        // concurrently with mutations and epoch swaps.
                        index.query(&QueryRequest::new(&query, k)).unwrap();
                    }
                }
            });
        }
        // One explicit compactor kicker: request-and-wait folds while the
        // mutators keep writing.
        {
            let index = &index;
            scope.spawn(move || {
                for _ in 0..4 {
                    index.compact().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    });

    assert!(
        index.compactions() >= 1,
        "the aggressive trigger plus explicit compacts must have folded at least once"
    );

    // Save immediately after a compaction-triggering burst — the worker
    // may be mid-rebuild — then reopen; the reopened index must hold
    // exactly the ledger's live set.
    let ledger = ledger.into_inner().unwrap();
    let mut index = index;
    {
        let mut burst_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0057);
        for _ in 0..6 {
            index.insert(&random_row(&mut burst_rng)).unwrap();
        }
        let dir = temp_root(Method::BrePartition, kind, seed).join("concurrent");
        index.save(&dir).unwrap();
        index = Index::open(&dir).unwrap();
        std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
        assert_eq!(index.len(), ledger.live.len() + 6, "live count after reopen");
    }

    // Serial replay: apply the ledger in order against a fresh
    // single-threaded index (no background compactor) and demand every
    // sample back, id-for-id.
    let replay = Index::build(&spec_for(Method::BrePartition, kind), &data).unwrap();
    let mut samples = samples.into_inner().unwrap();
    samples.sort_by_key(|s| s.0);
    let mut applied = 0usize;
    for (version, query, k, answer) in &samples {
        while applied < *version {
            match &ledger.log[applied] {
                Applied::Insert { id, row } => {
                    assert_eq!(replay.insert(row).unwrap().0, *id, "replay id issue order");
                }
                Applied::Delete { id } => {
                    assert!(replay.delete(PointId(*id)).unwrap(), "replay delete({id})");
                }
            }
            applied += 1;
        }
        let want = replay.query(&QueryRequest::new(query, *k)).unwrap().neighbors;
        let want_ids: Vec<u32> = want.iter().map(|(id, _)| id.0).collect();
        let got_ids: Vec<u32> = answer.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            got_ids, want_ids,
            "sample at version {version} diverged from the serial replay"
        );
        for (rank, ((_, wd), (_, gd))) in want.iter().zip(answer.iter()).enumerate() {
            assert!(
                (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
                "version {version} rank {rank}: concurrent {gd} vs replay {wd}"
            );
        }
    }
}

/// Deleting a never-issued or already-dead id must not dirty the delta or
/// reschedule work: after a fold, a barrage of dead deletes leaves the
/// epoch, the compaction counter and the pending-write flag untouched, and
/// an explicit `compact()` stays a no-op. Exercised through both the
/// inline and the background compaction paths.
#[test]
fn idempotent_deletes_keep_compaction_a_noop() {
    let seed = seed_from_env();
    for background in [false, true] {
        let kind = DivergenceKind::SquaredEuclidean;
        let mut spec = spec_for(Method::BBTree, kind);
        if background {
            spec = spec.with_background_compaction(true);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1DE0);
        let rows: Vec<Vec<f64>> = (0..INITIAL_POINTS).map(|_| random_row(&mut rng)).collect();
        let data = DenseDataset::from_rows(&rows).unwrap();
        let index = Index::build(&spec, &data).unwrap();
        let ctx = if background { "background" } else { "inline" };

        // A fresh index: a never-issued delete is a no-op and an explicit
        // compact has nothing to do.
        assert!(!index.delete(PointId(9_999)).unwrap());
        assert!(!index.delta().has_pending_writes(), "{ctx}: dead delete dirtied the delta");
        index.compact().unwrap();
        assert_eq!(index.epoch(), 0, "{ctx}: no-op compact bumped the epoch");
        assert_eq!(index.compactions(), 0);

        // One real delete, folded.
        assert!(index.delete(PointId(3)).unwrap());
        index.compact().unwrap();
        let epoch = index.epoch();
        let folds = index.compactions();
        assert_eq!(folds, 1, "{ctx}: the real tombstone must fold");

        // Dead deletes (the folded id, plus never-issued ids) must change
        // nothing, and compaction must stay a no-op.
        for target in [3u32, 9_999, u32::MAX] {
            assert!(!index.delete(PointId(target)).unwrap(), "{ctx}: delete({target})");
        }
        assert!(!index.delta().has_pending_writes(), "{ctx}: dead deletes dirtied the delta");
        index.compact().unwrap();
        assert_eq!(index.epoch(), epoch, "{ctx}: idempotent deletes rescheduled a fold");
        assert_eq!(index.compactions(), folds, "{ctx}: compaction count moved");
        assert_eq!(index.len(), INITIAL_POINTS - 1);
    }
}

/// The overlay must *clamp* a caller's candidate budget to cover its
/// tombstone over-fetch, not truncate below it: with more than `k`
/// tombstones concentrated on the very best base results and a budget
/// sized for `k`, all `k` live answers must still come back. (Before the
/// clamp, the inner backend refined only `budget` candidates — all of
/// them tombstoned — and returned fewer than `k` live results even though
/// they exist.) The row layout makes VA-file lower bounds exact-ordered,
/// so the oracle comparison is sound despite the budget.
#[test]
fn tombstoned_top_results_survive_a_tight_candidate_budget() {
    const N: usize = 32;
    const K: usize = 3;
    const TOMBSTONES: usize = 5;
    let kind = DivergenceKind::SquaredEuclidean;
    // Strictly increasing distance from the query for ascending ids, with
    // rows far enough apart that every point lands in its own
    // quantization cell.
    let rows: Vec<Vec<f64>> = (0..N).map(|i| vec![1.0 + i as f64; 4]).collect();
    let data = DenseDataset::from_rows(&rows).unwrap();
    let index = Index::build(&spec_for(Method::VaFile, kind), &data).unwrap();
    let query = vec![1.0; 4];

    // Tombstone the TOMBSTONES nearest points — more than k, all at the
    // top of the ranking.
    for id in 0..TOMBSTONES as u32 {
        assert!(index.delete(PointId(id)).unwrap());
    }

    let request = QueryRequest::new(&query, K).with_candidate_budget(K);
    let got = index.query(&request).unwrap().neighbors;
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = (TOMBSTONES as u32..(TOMBSTONES + K) as u32).collect();
    assert_eq!(
        got_ids, want_ids,
        "the k best live points must survive the tombstone over-fetch under a tight budget"
    );
    assert_eq!(got.len(), K, "budget clamping must never truncate below k");
}

#[test]
fn oracle_all_methods_and_kinds() {
    let seed = seed_from_env();
    for method in Method::ALL {
        for kind in DivergenceKind::ALL {
            run_interleaving(method, kind, seed);
        }
    }
}

#[test]
fn oracle_sharded_capacity_all_methods_and_kinds() {
    let seed = seed_from_env();
    for method in Method::ALL {
        for kind in DivergenceKind::ALL {
            run_sharded_interleaving(ShardMode::Capacity, method, kind, seed);
        }
    }
}

/// Forest replicas of an *exact* backend each return the true top-k, so the
/// deduplicated merge is the true top-k too and the oracle comparison stays
/// sound (ABP qualifies only at its p = 1.0 exactness point).
#[test]
fn oracle_sharded_forest_over_exact_replicas() {
    let seed = seed_from_env();
    for (method, kind) in [
        (Method::BBTree, DivergenceKind::ItakuraSaito),
        (Method::VaFile, DivergenceKind::SquaredEuclidean),
        (Method::Approximate, DivergenceKind::Exponential),
    ] {
        run_sharded_interleaving(ShardMode::Forest, method, kind, seed);
    }
}
