//! The columnar refine path's exactness contracts.
//!
//! * **Layout bit-identity**: the dimension-major (SoA) page codec and the
//!   row-major codec produce bit-identical final top-k ids *and*
//!   distances for every divergence — the layout only changes how decoded
//!   coordinates reach the block kernel, never what the kernel computes —
//!   including across a save → open cycle.
//! * **f32 candidate tier bit-identity**: for every `(Method,
//!   DivergenceKind)` pair that supports it, an index with the `f32`
//!   screening tier enabled returns ids and distances bit-identical to the
//!   unscreened index — the tier may only *skip* candidates whose exact
//!   distance provably exceeds the `k`-th best — before and after
//!   mutation and a save → open cycle, and it demonstrably skips work.
//! * **Spec-envelope migration**: a version-1 spec envelope (predating the
//!   `f32_candidates` knob) still opens, with the knob defaulted off.

use std::path::PathBuf;

use brepartition::pagestore::format::{seal, unseal};
use brepartition::pagestore::PageLayout;
use brepartition::prelude::*;
use brepartition::{SPEC_FILE, SPEC_MAGIC, SPEC_VERSION};

const DIM: usize = 12;

/// Strictly positive rows keep every divergence in domain.
fn rows(n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..DIM)
                .map(|j| {
                    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(j as u64 * 131 + salt);
                    0.3 + (x % 997) as f64 / 150.0
                })
                .collect()
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("brepartition-columnar-{}-{tag}", std::process::id()))
}

#[track_caller]
fn assert_bit_identical(ctx: &str, got: &[(PointId, f64)], want: &[(PointId, f64)]) {
    assert_eq!(got.len(), want.len(), "{ctx}: neighbor count");
    for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.0, w.0, "{ctx}: id at rank {rank}");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{ctx}: distance bits at rank {rank}");
    }
}

/// Run the layout A/B over one concrete divergence: build the same
/// disk-resident BB-tree under both page codecs, query through cold pools,
/// and require bit-identical answers — then again after save → open.
fn check_layouts<B: DecomposableBregman>(divergence: B) {
    let data = DenseDataset::from_rows(&rows(90, 11)).unwrap();
    let queries = rows(8, 47);
    let tree_config = BBTreeConfig { leaf_capacity: 8, ..Default::default() };
    let soa = DiskBBTree::build(
        divergence.clone(),
        &data,
        tree_config,
        PageStoreConfig::with_page_size(512).with_layout(PageLayout::DimMajor),
    );
    let aos = DiskBBTree::build(
        divergence.clone(),
        &data,
        tree_config,
        PageStoreConfig::with_page_size(512).with_layout(PageLayout::RowMajor),
    );
    let name = divergence.name();
    let compare = |left: &DiskBBTree<B>, right: &DiskBBTree<B>, ctx: &str| {
        for (qi, q) in queries.iter().enumerate() {
            let a = left.knn(&mut BufferPool::unbuffered(), q, 9).unwrap();
            let b = right.knn(&mut BufferPool::unbuffered(), q, 9).unwrap();
            let a: Vec<_> = a.neighbors.iter().map(|n| (n.id, n.distance)).collect();
            let b: Vec<_> = b.neighbors.iter().map(|n| (n.id, n.distance)).collect();
            assert_bit_identical(&format!("{name} {ctx} query {qi}"), &a, &b);
        }
    };
    compare(&soa, &aos, "built");

    // Both codecs survive persistence and still agree after reopening.
    for (tag, tree) in [("soa", &soa), ("aos", &aos)] {
        let dir = temp_dir(&format!("{name}-{tag}"));
        tree.save(&dir).unwrap();
        let reopened = DiskBBTree::open(divergence.clone(), &dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        compare(&reopened, &soa, &format!("reopened-{tag}"));
    }
}

/// The SoA page codec is an encoding change, not a numeric one: final
/// top-k ids and distances match the row-major codec bit for bit, for
/// every divergence family, fresh and reopened.
#[test]
fn soa_and_row_major_page_layouts_are_bit_identical() {
    check_layouts(SquaredEuclidean);
    check_layouts(ItakuraSaito);
    check_layouts(Exponential);
    check_layouts(brepartition::bregman::GeneralizedI);
}

/// The f32 screening tier never changes an answer: ids and f64 distances
/// stay bit-identical to the unscreened index for every supported pair —
/// through mutations and a save → open cycle (which rebuilds the f32 rows
/// from the page file) — while demonstrably examining fewer candidates.
#[test]
fn f32_candidate_tier_is_bit_identical_and_skips_work() {
    let data = DenseDataset::from_rows(&rows(160, 3)).unwrap();
    let queries = rows(10, 71);

    // Non-vacuity pin at the core level, where exact-evaluation counters
    // are visible: the screened index computes strictly fewer exact
    // divergences than the unscreened one over the same workload.
    {
        let kind = DivergenceKind::SquaredEuclidean;
        let config = IndexSpec::brepartition(kind)
            .with_partitions(3)
            .with_page_size(1024)
            .with_seed(0xC0FFEE)
            .brepartition_config();
        let plain = BrePartitionIndex::build(kind, &data, &config).unwrap();
        let tiered = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig { f32_candidates: true, ..config },
        )
        .unwrap();
        let (mut evals_plain, mut evals_tiered) = (0u64, 0u64);
        for q in &queries {
            evals_plain += plain.knn(q, 7).unwrap().stats.search.distance_computations;
            evals_tiered += tiered.knn(q, 7).unwrap().stats.search.distance_computations;
        }
        assert!(
            evals_tiered < evals_plain,
            "the f32 tier never skipped an exact evaluation ({evals_tiered} vs {evals_plain}) — \
             the exactness pin below is vacuous"
        );
    }

    for method in [Method::BrePartition, Method::Approximate] {
        for kind in DivergenceKind::ALL {
            let base = IndexSpec::new(method, kind)
                .with_partitions(3)
                .with_page_size(1024)
                .with_seed(0xC0FFEE);
            if base.validate().is_err() {
                continue; // BP/ABP over GI, pinned by the oracle suite
            }
            let label = format!("{}/{}", method.short_name(), kind.short_name());
            let plain = Index::build(&base, &data).unwrap();
            let tiered = Index::build(&base.with_f32_candidates(true), &data).unwrap();

            for (qi, q) in queries.iter().enumerate() {
                let want = plain.query(&QueryRequest::new(q, 7)).unwrap();
                let got = tiered.query(&QueryRequest::new(q, 7)).unwrap();
                assert_bit_identical(
                    &format!("{label} query {qi}"),
                    &got.neighbors,
                    &want.neighbors,
                );
                // Screening changes which candidates get *exact* scores,
                // never the filter phase's candidate union.
                assert_eq!(got.candidates, want.candidates, "{label}: union changed");
            }

            // Identical mutations on both sides, still bit-identical.
            for row in rows(5, 29) {
                assert_eq!(plain.insert(&row).unwrap(), tiered.insert(&row).unwrap());
            }
            for target in [2u32, 57, 161] {
                assert_eq!(
                    plain.delete(PointId(target)).unwrap(),
                    tiered.delete(PointId(target)).unwrap(),
                    "{label}: delete({target}) liveness"
                );
            }
            let want = plain.run(&Request::uniform(&queries, 6)).unwrap();
            let got = tiered.run(&Request::uniform(&queries, 6)).unwrap();
            for (qi, (g, w)) in got.outcomes.iter().zip(want.outcomes.iter()).enumerate() {
                assert_bit_identical(&format!("{label} mutated {qi}"), &g.neighbors, &w.neighbors);
            }

            // Across save → open the tier's rows are rebuilt from the page
            // file; the spec round-trips the knob, answers stay identical.
            let dir = temp_dir(&label.replace('/', "-"));
            tiered.save(&dir).unwrap();
            let reopened = Index::open(&dir).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            assert!(reopened.spec().f32_candidates, "{label}: knob lost in persistence");
            let got = reopened.run(&Request::uniform(&queries, 6)).unwrap();
            for (qi, (g, w)) in got.outcomes.iter().zip(want.outcomes.iter()).enumerate() {
                assert_bit_identical(&format!("{label} reopened {qi}"), &g.neighbors, &w.neighbors);
            }
        }
    }
}

/// Legacy spec envelopes still open with the newer knobs defaulted off:
/// version 2 predates the compaction spec (17 trailing bytes — flag +
/// two ratios), version 1 additionally predates the `f32_candidates`
/// flag byte.
#[test]
fn version_1_spec_envelopes_still_open_with_the_tier_defaulted_off() {
    let data = DenseDataset::from_rows(&rows(40, 13)).unwrap();
    let spec = IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
        .with_partitions(2)
        .with_page_size(1024);
    let index = Index::build(&spec, &data).unwrap();
    let dir = temp_dir("spec-v1");
    index.save(&dir).unwrap();

    // Down-convert the sealed spec envelope layer by layer and re-seal
    // under each legacy version.
    let sealed = std::fs::read(dir.join(SPEC_FILE)).unwrap();
    let payload = unseal(&SPEC_MAGIC, SPEC_VERSION, &sealed).unwrap();
    let v2_payload = &payload[..payload.len() - 17];
    let v1_payload = &v2_payload[..v2_payload.len() - 1];
    let q = rows(1, 99).pop().unwrap();
    let want = index.query(&QueryRequest::new(&q, 5)).unwrap();

    std::fs::write(dir.join(SPEC_FILE), seal(&SPEC_MAGIC, 2, v2_payload)).unwrap();
    let reopened = Index::open(&dir).unwrap();
    assert!(
        !reopened.spec().compaction.background,
        "v2 envelopes must default background compaction off"
    );
    let got = reopened.query(&QueryRequest::new(&q, 5)).unwrap();
    assert_bit_identical("v2 spec", &got.neighbors, &want.neighbors);

    std::fs::write(dir.join(SPEC_FILE), seal(&SPEC_MAGIC, 1, v1_payload)).unwrap();
    let reopened = Index::open(&dir).unwrap();
    assert!(!reopened.spec().f32_candidates, "legacy envelopes must default the tier off");
    assert!(!reopened.spec().compaction.background);
    assert_eq!(reopened.spec().divergence, DivergenceKind::ItakuraSaito);
    let got = reopened.query(&QueryRequest::new(&q, 5)).unwrap();
    assert_bit_identical("legacy spec", &got.neighbors, &want.neighbors);
    std::fs::remove_dir_all(&dir).unwrap();
}
