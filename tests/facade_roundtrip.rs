//! The acceptance test of the unified-façade redesign: all four methods
//! driven through the *identical* `IndexSpec` → `Index::build` → `save` →
//! `Index::open` → `QueryRequest` path, with neighbor sets pinned
//! bit-identical to hand-wired concrete backends (the constructors a
//! pre-façade caller would have dispatched to) — including a batch with
//! heterogeneous per-query `k` — plus the persistence error paths: opening
//! a directory saved by a different method or divergence must fail with a
//! descriptive error, never a decode panic.

use std::path::PathBuf;
use std::sync::Arc;

use brepartition::prelude::*;

const PAGE: usize = 4096;
const LEAF: usize = 16;
const M: usize = 6;
const PROBABILITY: f64 = 0.9;

fn workload(n: usize, queries: usize) -> (DenseDataset, Vec<Vec<f64>>) {
    let data =
        HierarchicalSpec { n, dim: 24, clusters: 12, blocks: 6, ..Default::default() }.generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, queries, 0.02, 0xFACADE);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();
    (data, queries)
}

fn temp_root(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("brepartition-facade-{}-{name}", std::process::id()))
}

/// The identical spec every method is driven through (method swapped in).
fn spec_for(method: Method) -> IndexSpec {
    IndexSpec::new(method, DivergenceKind::ItakuraSaito)
        .with_partitions(M)
        .with_leaf_capacity(LEAF)
        .with_page_size(PAGE)
        .with_probability(PROBABILITY)
}

/// A hand-wired concrete backend for the same method and knobs — the
/// reference the spec-driven path is pinned bit-identical against.
fn pre_redesign_backend(method: Method, data: &DenseDataset) -> Arc<dyn SearchBackend> {
    let kind = DivergenceKind::ItakuraSaito;
    let config = BrePartitionConfig::default()
        .with_partitions(M)
        .with_leaf_capacity(LEAF)
        .with_page_size(PAGE);
    match method {
        Method::BrePartition => Arc::new(BrePartitionBackend::exact(
            BrePartitionIndex::build(kind, data, &config).unwrap(),
        )),
        Method::Approximate => Arc::new(BrePartitionBackend::approximate(
            BrePartitionIndex::build(kind, data, &config).unwrap(),
            ApproximateConfig::with_probability(PROBABILITY),
        )),
        Method::BBTree => Arc::new(BBTreeBackend::build(
            ItakuraSaito,
            data,
            BBTreeConfig::with_leaf_capacity(LEAF),
            PageStoreConfig::with_page_size(PAGE),
        )),
        Method::VaFile => Arc::new(VaFileBackend::build(
            ItakuraSaito,
            data,
            VaFileConfig { page_size_bytes: PAGE, ..VaFileConfig::default() },
        )),
        other => panic!("unknown method {other:?}"),
    }
}

/// Acceptance criterion: one loop, four methods, the identical spec-driven
/// path, neighbors bit-identical to the pre-redesign constructors.
#[test]
fn all_four_methods_roundtrip_identically_through_the_facade() {
    let (data, queries) = workload(1_200, 96);
    let root = temp_root("all-methods");

    for method in Method::ALL {
        let spec = spec_for(method);

        // The identical path: IndexSpec → Index::build → save → Index::open.
        let built = Index::build(&spec, &data).unwrap();
        let dir = root.join(method.short_name());
        built.save(&dir).unwrap();
        let reopened = Index::open(&dir).unwrap();
        assert_eq!(reopened.spec(), &spec, "{method}: the envelope restores the full spec");
        assert_eq!(reopened.method(), method);
        assert_eq!(reopened.divergence(), DivergenceKind::ItakuraSaito);
        assert_eq!(reopened.len(), data.len(), "{method}");
        assert_eq!(reopened.dim(), data.dim(), "{method}");

        // Uniform batch: built façade, reopened façade and the
        // pre-redesign constructor must agree bit-for-bit.
        let k = 10;
        let uniform = Request::uniform(&queries, k);
        let config = EngineConfig::default().with_threads(4);
        let a = built.run_with(&uniform, config).unwrap();
        let b = reopened.run_with(&uniform, config).unwrap();
        let old = QueryEngine::with_config(pre_redesign_backend(method, &data), config)
            .unwrap()
            .run_batch(&queries, k)
            .unwrap();
        for (qi, ((x, y), z)) in
            a.outcomes.iter().zip(b.outcomes.iter()).zip(old.outcomes.iter()).enumerate()
        {
            assert_eq!(x.neighbors, z.neighbors, "{method} query {qi}: façade vs pre-redesign");
            assert_eq!(y.neighbors, z.neighbors, "{method} query {qi}: reopened vs pre-redesign");
            assert_eq!(x.io, y.io, "{method} query {qi}: cold-pool I/O must survive reopening");
            assert_eq!(x.candidates, z.candidates, "{method} query {qi}");
        }

        // Heterogeneous per-query k through the same reopened index: query
        // i asks for (i % 7) + 1 neighbors; the pre-redesign reference is a
        // direct per-query drive of the old backend.
        let hetero = Request::batch(
            queries.iter().enumerate().map(|(i, q)| QueryRequest::new(q, (i % 7) + 1)),
        );
        let batch = reopened.run_with(&hetero, config).unwrap();
        let old_backend = pre_redesign_backend(method, &data);
        for (i, outcome) in batch.outcomes.iter().enumerate() {
            let k = (i % 7) + 1;
            assert_eq!(outcome.neighbors.len(), k, "{method} query {i} ignored its own k");
            let mut scratch = old_backend.new_scratch();
            let expected = old_backend.knn(&mut scratch, &queries[i], k).unwrap();
            assert_eq!(
                outcome.neighbors, expected.neighbors,
                "{method} query {i} (k={k}): heterogeneous batch diverged from pre-redesign"
            );
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Per-query options through the façade: probability overrides match the
/// dedicated approximate method; unsupported options are typed errors.
#[test]
fn per_query_options_route_through_the_facade() {
    let (data, queries) = workload(600, 16);
    let exact = Index::build(&spec_for(Method::BrePartition), &data).unwrap();
    let approx = Index::build(&spec_for(Method::Approximate), &data).unwrap();

    for (i, q) in queries.iter().enumerate() {
        let overridden =
            exact.query(&QueryRequest::new(q, 8).with_probability(PROBABILITY)).unwrap();
        let dedicated = approx.query(&QueryRequest::new(q, 8)).unwrap();
        assert_eq!(
            overridden.neighbors, dedicated.neighbors,
            "query {i}: probability override must equal the dedicated ABP method"
        );
    }

    // Candidate budgets are unsupported on BrePartition: typed error.
    match exact.query(&QueryRequest::new(&queries[0], 8).with_candidate_budget(32)) {
        Err(Error::Engine(EngineError::UnsupportedOption { backend, option })) => {
            assert_eq!(backend, "BP");
            assert!(option.contains("candidate budget"));
        }
        other => panic!("expected a typed unsupported-option error, got {other:?}"),
    }

    // …but the baselines honor them.
    let vaf = Index::build(&spec_for(Method::VaFile), &data).unwrap();
    let bounded = vaf.query(&QueryRequest::new(&queries[0], 8).with_candidate_budget(4)).unwrap();
    let unbounded = vaf.query(&QueryRequest::new(&queries[0], 8)).unwrap();
    assert!(bounded.io.pages_read <= unbounded.io.pages_read);
}

/// Satellite: `Index::open` on a directory saved by a *different*
/// method/divergence fails with a descriptive error, not a decode panic.
#[test]
fn open_rejects_foreign_and_mismatched_directories_descriptively() {
    let (data, _) = workload(300, 4);
    let root = temp_root("mismatch");

    // A directory with no spec envelope at all (the pre-façade layout).
    let bare = root.join("bare");
    let index = Index::build(&spec_for(Method::BrePartition), &data).unwrap();
    index.backend().save(&bare).unwrap(); // backend-level save: artifacts only, no envelope
    match Index::open(&bare) {
        Err(e) => {
            let message = e.to_string();
            assert!(message.contains("spec envelope"), "undescriptive error: {message}");
        }
        Ok(_) => panic!("a directory without a spec envelope must not open"),
    }

    // A BBT directory whose envelope claims it is a VA-file: the VA-file
    // artifacts are missing, and the error says so.
    let bbt_dir = root.join("bbt");
    Index::build(&spec_for(Method::BBTree), &data).unwrap().save(&bbt_dir).unwrap();
    let vaf_dir = root.join("vaf");
    Index::build(&spec_for(Method::VaFile), &data).unwrap().save(&vaf_dir).unwrap();
    std::fs::copy(vaf_dir.join(brepartition::SPEC_FILE), bbt_dir.join(brepartition::SPEC_FILE))
        .unwrap();
    match Index::open(&bbt_dir) {
        Err(e) => {
            let message = e.to_string();
            assert!(message.contains("VaFile"), "undescriptive error: {message}");
        }
        Ok(_) => panic!("mismatched method must not open"),
    }

    // A BP/ISD directory whose envelope claims Squared Euclidean: caught by
    // the divergence cross-check with both kinds named.
    let bp_dir = root.join("bp");
    Index::build(&spec_for(Method::BrePartition), &data).unwrap().save(&bp_dir).unwrap();
    let se_data =
        HierarchicalSpec { n: 120, dim: 24, clusters: 4, blocks: 4, ..Default::default() }
            .generate();
    let se_dir = root.join("bp-se");
    Index::build(
        &IndexSpec::brepartition(DivergenceKind::SquaredEuclidean)
            .with_partitions(M)
            .with_leaf_capacity(LEAF)
            .with_page_size(PAGE),
        &se_data,
    )
    .unwrap()
    .save(&se_dir)
    .unwrap();
    std::fs::copy(se_dir.join(brepartition::SPEC_FILE), bp_dir.join(brepartition::SPEC_FILE))
        .unwrap();
    match Index::open(&bp_dir) {
        Err(Error::Mismatch { expected, found }) => {
            assert!(expected.contains("SE"), "{expected}");
            assert!(found.contains("ISD"), "{found}");
        }
        other => panic!("expected a divergence mismatch, got {other:?}"),
    }

    // A corrupted spec envelope fails the checksum, not the decoder.
    let corrupt_dir = root.join("corrupt");
    index.save(&corrupt_dir).unwrap();
    let spec_path = corrupt_dir.join(brepartition::SPEC_FILE);
    let mut bytes = std::fs::read(&spec_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&spec_path, &bytes).unwrap();
    match Index::open(&corrupt_dir) {
        Err(Error::Persist(_)) => {}
        other => panic!("expected a persist error, got {other:?}"),
    }

    std::fs::remove_dir_all(&root).unwrap();
}

/// The spec envelope survives a save → open → save → open chain.
#[test]
fn double_roundtrip_keeps_the_envelope_and_answers() {
    let (data, queries) = workload(400, 16);
    let root = temp_root("double");
    let spec = spec_for(Method::Approximate);
    let built = Index::build(&spec, &data).unwrap();
    built.save(&root.join("first")).unwrap();
    let once = Index::open(&root.join("first")).unwrap();
    once.save(&root.join("second")).unwrap();
    let twice = Index::open(&root.join("second")).unwrap();
    assert_eq!(twice.spec(), &spec);

    let request = Request::uniform(&queries, 9);
    let a = built.run(&request).unwrap();
    let b = twice.run(&request).unwrap();
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.neighbors, y.neighbors);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// `StorageSpec::buffer_pool_pages` takes effect for every method: a
/// buffered spec yields cacheable scratch pools (so warm-scratch engines
/// construct), an unbuffered one is rejected for warm serving.
#[test]
fn buffer_pool_pages_is_honored_by_every_method() {
    let (data, queries) = workload(300, 4);
    for method in Method::ALL {
        let unbuffered = Index::build(&spec_for(method), &data).unwrap();
        match unbuffered.engine(EngineConfig::default().with_threads(2).with_warm_scratch()) {
            Err(Error::Engine(EngineError::Config(message))) => {
                assert!(message.contains("warm"), "{method}: {message}")
            }
            other => panic!("{method}: expected warm-scratch rejection, got {other:?}"),
        }

        let buffered = Index::build(&spec_for(method).with_buffer_pool_pages(32), &data).unwrap();
        let engine = buffered
            .engine(EngineConfig::default().with_threads(2).with_warm_scratch())
            .unwrap_or_else(|e| panic!("{method}: buffered pools must allow warm scratch: {e}"));
        let batch = engine.run_batch(&queries, 5).unwrap();
        assert_eq!(batch.outcomes.len(), queries.len(), "{method}");
    }
}

/// Invalid specs and engine configs surface as typed errors through the
/// façade, before any index work happens.
#[test]
fn invalid_specs_and_configs_are_typed_errors() {
    let (data, queries) = workload(200, 4);

    match Index::build(&spec_for(Method::Approximate).with_probability(1.5), &data) {
        Err(Error::Spec(message)) => assert!(message.contains("1.5"), "{message}"),
        other => panic!("expected spec error, got {other:?}"),
    }
    match Index::build(&IndexSpec::brepartition(DivergenceKind::GeneralizedI), &data) {
        Err(Error::Spec(message)) => assert!(message.contains("GI"), "{message}"),
        other => panic!("expected spec error, got {other:?}"),
    }

    let index = Index::build(&spec_for(Method::BrePartition), &data).unwrap();
    match index.engine(EngineConfig::default().with_threads(0)) {
        Err(Error::Engine(EngineError::Config(message))) => {
            assert!(message.contains("at least 1"), "{message}");
        }
        other => panic!("expected engine config error, got {other:?}"),
    }
    match index.run_with(&Request::uniform(&queries, 3), EngineConfig::default().with_threads(0)) {
        Err(Error::Engine(EngineError::Config(_))) => {}
        other => panic!("expected engine config error, got {other:?}"),
    }
}

/// Satellite fix: a directory holding a *valid* index plus a foreign extra
/// file must be rejected descriptively — the directory is not (only) what
/// its envelope claims. Previously this case was uncovered by any test.
#[test]
fn open_rejects_a_directory_with_a_foreign_extra_file() {
    let (data, _) = workload(200, 4);
    let root = temp_root("foreign-extra");

    for method in Method::ALL {
        let dir = root.join(method.short_name());
        Index::build(&spec_for(method), &data).unwrap().save(&dir).unwrap();
        assert!(Index::open(&dir).is_ok(), "{method}: pristine directory must open");

        std::fs::write(dir.join("stray.bin"), b"not one of ours").unwrap();
        match Index::open(&dir) {
            Err(Error::Mismatch { expected, found }) => {
                assert!(found.contains("stray.bin"), "{method}: {found}");
                assert!(
                    expected.contains(method.name()),
                    "{method}: the error must name the expected layout: {expected}"
                );
            }
            other => panic!("{method}: expected a foreign-entry rejection, got {other:?}"),
        }

        // Removing the foreign entry restores openability.
        std::fs::remove_file(dir.join("stray.bin")).unwrap();
        assert!(Index::open(&dir).is_ok(), "{method}");
    }
    std::fs::remove_dir_all(&root).unwrap();
}
