//! Chaos suite: the sharded serving tier under seeded fault schedules.
//!
//! Every scenario drives a capacity- or forest-mode [`ShardedIndex`]
//! through [`ShardedIndex::run_with_policy`] with per-shard
//! [`FaultPlan`]s armed — transient failures, permanent shard death,
//! latency spikes, injected panics — and checks the recovery contract
//! against a brute-force oracle:
//!
//! * retries recover **exact** results when faults are transient (the
//!   schedule is attempt-gated, so a retried query deterministically
//!   succeeds);
//! * permanent death degrades explicitly — forest mode reports a recall
//!   floor the measured recall honors, capacity mode fails fast or flags
//!   the unreached id-space fraction under `allow_partial` — never
//!   silently incomplete;
//! * the breaker opens exactly once per dead shard (a failed half-open
//!   probe re-opens without double-counting);
//! * the whole run replays **bit-identically** under the same seed.
//!
//! Worker budgets equal the shard count throughout, so each shard's engine
//! runs one worker and the fault schedule's operation order is
//! deterministic. The base seed is overridable via
//! `BREPARTITION_CHAOS_SEED` (CI runs two seeds).

use brepartition::prelude::*;

const DIM: usize = 8;
const K: usize = 5;

/// One query's merged answer, best first.
type NeighborList = Vec<(PointId, f64)>;

fn seed_from_env() -> u64 {
    match std::env::var("BREPARTITION_CHAOS_SEED") {
        Err(_) => 0xC4A05,
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("BREPARTITION_CHAOS_SEED must be a u64, got {raw:?}")),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Strictly positive rows keep every divergence in domain; full-precision
/// mantissas keep distances tie-free, so neighbor order is unambiguous.
fn rows(n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..DIM)
                .map(|j| {
                    let z = splitmix64(salt ^ ((i as u64) << 16) ^ j as u64);
                    0.2 + (z >> 11) as f64 / (1u64 << 53) as f64 * 8.0
                })
                .collect()
        })
        .collect()
}

fn base_spec(method: Method, kind: DivergenceKind, seed: u64) -> IndexSpec {
    let spec = IndexSpec::new(method, kind)
        .with_partitions(2)
        .with_leaf_capacity(8)
        .with_page_size(1024)
        .with_sample_size(64)
        .with_seed(seed);
    if method == Method::Approximate {
        spec.with_probability(0.9)
    } else {
        spec
    }
}

/// Brute-force exact kNN over `data` restricted to ids satisfying `keep`.
fn brute_force(
    data: &[Vec<f64>],
    kind: DivergenceKind,
    query: &[f64],
    k: usize,
    keep: impl Fn(u32) -> bool,
) -> Vec<(PointId, f64)> {
    let mut scored: Vec<(PointId, f64)> = data
        .iter()
        .enumerate()
        .filter(|(i, _)| keep(*i as u32))
        .map(|(i, row)| (PointId(i as u32), kind.divergence(row, query)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Two *index* runs must agree bit for bit (replay determinism).
#[track_caller]
fn assert_bit_identical(ctx: &str, got: &[(PointId, f64)], want: &[(PointId, f64)]) {
    assert_eq!(got.len(), want.len(), "{ctx}: neighbor count");
    for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.0, w.0, "{ctx}: id at rank {rank}");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{ctx}: distance bits at rank {rank}");
    }
}

/// An index answer vs the brute-force oracle: ids exact, distances within
/// relative tolerance (the index scores with its own columnar kernels, so
/// the last bits may differ from a naive scan).
#[track_caller]
fn assert_matches_oracle(ctx: &str, got: &[(PointId, f64)], want: &[(PointId, f64)]) {
    let got_ids: Vec<u32> = got.iter().map(|(id, _)| id.0).collect();
    let want_ids: Vec<u32> = want.iter().map(|(id, _)| id.0).collect();
    assert_eq!(got_ids, want_ids, "{ctx}: neighbor ids diverged from brute force");
    for (rank, ((_, gd), (_, wd))) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()),
            "{ctx}: rank {rank} distance {gd} vs brute-force {wd}"
        );
    }
}

/// Suppress the panic hook's stderr spew for *injected* panics only; real
/// panics (test failures included) keep the default report. Installed once
/// per test binary, so concurrently-running tests never race a hook swap.
fn quiet_injected_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected fault") {
                default(info);
            }
        }));
    });
}

/// A retry policy generous enough to drain any transient schedule in these
/// tests, with no real sleeping (backoff zeroed) and a breaker that stays
/// out of the way unless a scenario tightens it.
fn generous_policy(seed: u64) -> FanoutPolicy {
    FanoutPolicy::default()
        .with_max_retries(24)
        .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO)
        .with_breaker(30, 2)
        .with_seed(seed)
}

/// With no chaos armed, the fault-tolerant path is the plain path: same
/// neighbors, bit for bit, and a `Full` outcome — for both modes.
#[test]
fn no_faults_means_run_with_policy_equals_run_with_budget() {
    let seed = seed_from_env();
    let data_rows = rows(60, seed);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(12, seed ^ 77);
    let request = Request::uniform(&queries, K);
    let base = base_spec(Method::BBTree, DivergenceKind::ItakuraSaito, seed);
    for spec in [ShardSpec::capacity(base, 3), ShardSpec::forest(base, 3)] {
        let sharded = ShardedIndex::build(&spec, &data).unwrap();
        let plain = sharded.run_with_budget(&request, 3).unwrap();
        let resilient = sharded.run_with_policy(&request, 3, &generous_policy(seed)).unwrap();
        assert!(resilient.availability.is_full());
        assert!(resilient.shard_failures.iter().all(Option::is_none));
        for (qi, (a, b)) in plain.outcomes.iter().zip(resilient.outcomes.iter()).enumerate() {
            assert_bit_identical(&format!("{} query {qi}", spec.mode), &b.neighbors, &a.neighbors);
        }
        assert_eq!(sharded.health().retries(), 0);
        assert_eq!(sharded.health().breaker_opens(), 0);
        assert_eq!(sharded.degraded_queries(), 0);
    }
}

/// Transient faults (plus injected panics and latency spikes) on every
/// shard: retries drain the schedule and the batch comes back `Full` and
/// bit-identical to the brute-force oracle. Reruns under the same seed
/// replay the exact same fault counts.
#[test]
fn transient_faults_and_panics_recover_to_exact_results() {
    quiet_injected_panics();
    let seed = seed_from_env();
    let data_rows = rows(60, seed ^ 0xA);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(16, seed ^ 0xB);
    let kind = DivergenceKind::SquaredEuclidean;
    let request = Request::uniform(&queries, K);
    let spec = ShardSpec::capacity(base_spec(Method::BBTree, kind, seed), 3);

    let run = |label: &str| -> (Vec<NeighborList>, u64, u64, u64) {
        let mut sharded = ShardedIndex::build(&spec, &data).unwrap();
        sharded
            .arm_chaos(vec![
                // Shard 0: transient errors on ~half the queries.
                Some(FaultPlan::with_seed(seed).with_transient_rate(0.5)),
                // Shard 1: injected panics — contained per query, retried.
                Some(FaultPlan::with_seed(seed ^ 1).with_panic_rate(0.3)),
                // Shard 2: latency spikes only (never an error).
                Some(
                    FaultPlan::with_seed(seed ^ 2)
                        .with_latency(0.5, std::time::Duration::from_micros(200)),
                ),
            ])
            .unwrap();
        let batch = sharded
            .run_with_policy(&request, 3, &generous_policy(seed))
            .unwrap_or_else(|e| panic!("{label}: transient chaos must recover, got {e}"));
        assert!(batch.availability.is_full(), "{label}");
        let transients = sharded.chaos_state(0).unwrap().transients();
        let panics = sharded.chaos_state(1).unwrap().panics();
        let spikes = sharded.chaos_state(2).unwrap().spikes();
        assert!(transients > 0, "{label}: a 50% rate over 16 queries must inject something");
        assert!(panics > 0, "{label}: a 30% panic rate over 16 queries must inject something");
        assert!(spikes > 0, "{label}: a 50% spike rate over 16 queries must inject something");
        assert!(sharded.health().retries() > 0, "{label}: recovery requires retries");
        assert_eq!(
            sharded.health().breaker_opens(),
            0,
            "{label}: recovered fan-outs must not trip the breaker"
        );
        let neighbors: Vec<NeighborList> =
            batch.outcomes.iter().map(|o| o.neighbors.clone()).collect();
        (neighbors, transients, panics, spikes)
    };

    let (first, t1, p1, s1) = run("first");
    for (qi, (query, got)) in queries.iter().zip(first.iter()).enumerate() {
        let want = brute_force(&data_rows, kind, query, K, |_| true);
        assert_matches_oracle(&format!("query {qi}"), got, &want);
    }
    let (second, t2, p2, s2) = run("second");
    assert_eq!(first, second, "the same seed must replay bit-identically");
    assert_eq!((t1, p1), (t2, p2), "fault counts must replay exactly");
    assert_eq!(s1, s2, "spike counts must replay exactly");
}

/// Permanent death of a capacity slice: without `allow_partial` the batch
/// fails fast with a typed `Unavailable`; with it, the answer covers the
/// surviving slices exactly and reports the dead slice's live-point share
/// as the unreached fraction.
#[test]
fn capacity_death_fails_fast_or_flags_the_unreached_fraction() {
    let seed = seed_from_env();
    let data_rows = rows(60, seed ^ 0x10);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(10, seed ^ 0x11);
    let kind = DivergenceKind::ItakuraSaito;
    let spec = ShardSpec::capacity(base_spec(Method::BBTree, kind, seed), 3);
    let dead_shard = 1usize;

    let mut sharded = ShardedIndex::build(&spec, &data).unwrap();
    let mut plans: Vec<Option<FaultPlan>> = vec![None; 3];
    plans[dead_shard] = Some(FaultPlan::with_seed(seed).with_die_after(0));
    sharded.arm_chaos(plans).unwrap();
    let policy = generous_policy(seed).with_max_retries(2).with_breaker(2, 2);

    // Fail fast: disjoint slices must never come back silently incomplete.
    let strict = Request::uniform(&queries, K);
    match sharded.run_with_policy(&strict, 3, &policy) {
        Err(Error::Unavailable { shards_failed: 1, shards_answered: 2, reason }) => {
            assert!(reason.contains("permanently dead"), "{reason}");
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }

    // Opt-in partial: the merge equals brute force over the live slices.
    let partial = Request::uniform(&queries, K).allow_partial();
    let batch = sharded.run_with_policy(&partial, 3, &policy).unwrap();
    let dead_points = (0..data.len() as u32).filter(|&id| spec.route(PointId(id)) == dead_shard);
    let expected_fraction = dead_points.count() as f64 / data.len() as f64;
    match batch.availability {
        Outcome::Partial { shards_answered: 2, shards_failed: 1, unreached_fraction } => {
            assert!((unreached_fraction - expected_fraction).abs() < 1e-12);
        }
        other => panic!("expected Partial, got {other:?}"),
    }
    let failure = batch.shard_failures[dead_shard].as_ref().unwrap();
    assert!(!failure.skipped || failure.retries == 0, "first fan-outs really dispatch");
    for (qi, (query, outcome)) in queries.iter().zip(batch.outcomes.iter()).enumerate() {
        let want =
            brute_force(&data_rows, kind, query, K, |id| spec.route(PointId(id)) != dead_shard);
        assert_matches_oracle(&format!("partial query {qi}"), &outcome.neighbors, &want);
    }
    assert_eq!(sharded.degraded_queries(), queries.len() as u64);
}

/// The acceptance scenario: a fault schedule permanently kills 1 of 4
/// forest replicas. A sweep of batches completes with `Degraded` outcomes
/// whose measured recall meets the reported floor, the breaker opens
/// exactly once (half-open probes re-fail without double-counting), and
/// the identical seed reproduces the sweep bit for bit.
#[test]
fn forest_death_degrades_with_recall_floor_and_one_breaker_open() {
    let seed = seed_from_env();
    let data_rows = rows(72, seed ^ 0x20);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let kind = DivergenceKind::SquaredEuclidean;
    let spec = ShardSpec::forest(base_spec(Method::BBTree, kind, seed), 4);
    let dead_shard = 2usize;
    const SWEEP: usize = 8;

    let sweep = |label: &str| -> Vec<Vec<NeighborList>> {
        let mut sharded = ShardedIndex::build(&spec, &data).unwrap();
        let mut plans: Vec<Option<FaultPlan>> = vec![None; 4];
        plans[dead_shard] = Some(FaultPlan::with_seed(seed).with_die_after(0));
        sharded.arm_chaos(plans).unwrap();
        // Tight breaker: open after 2 failed fan-outs, probe every 2.
        let policy = generous_policy(seed).with_max_retries(1).with_breaker(2, 2);
        let mut per_batch = Vec::new();
        for round in 0..SWEEP {
            let queries = rows(6, seed ^ (0x30 + round as u64));
            let request = Request::uniform(&queries, K);
            let batch = sharded
                .run_with_policy(&request, 4, &policy)
                .unwrap_or_else(|e| panic!("{label} round {round}: {e}"));
            match batch.availability {
                Outcome::Degraded { shards_answered: 3, shards_failed: 1, recall_floor } => {
                    // Exact replicas answer exactly: the floor is 1.0 and
                    // the measured recall must meet it.
                    assert_eq!(recall_floor, 1.0, "{label} round {round}");
                    for (qi, (query, outcome)) in
                        queries.iter().zip(batch.outcomes.iter()).enumerate()
                    {
                        let want = brute_force(&data_rows, kind, query, K, |_| true);
                        let hits = outcome
                            .neighbors
                            .iter()
                            .filter(|(id, _)| want.iter().any(|(wid, _)| wid == id))
                            .count();
                        let recall = hits as f64 / want.len() as f64;
                        assert!(
                            recall >= recall_floor,
                            "{label} round {round} query {qi}: recall {recall} below floor"
                        );
                        // Stronger than the floor: surviving exact replicas
                        // merge to the exact answer.
                        assert_matches_oracle(
                            &format!("{label} round {round} query {qi}"),
                            &outcome.neighbors,
                            &want,
                        );
                    }
                }
                other => panic!("{label} round {round}: expected Degraded, got {other:?}"),
            }
            per_batch.push(batch.outcomes.iter().map(|o| o.neighbors.clone()).collect::<Vec<_>>());
        }
        assert_eq!(
            sharded.health().breaker_opens(),
            1,
            "{label}: the breaker must open exactly once across the sweep"
        );
        assert_eq!(sharded.health().state(dead_shard), BreakerState::Open, "{label}");
        // Rounds 0-1 fail and open the breaker; rounds 2-3 and 5-6 are
        // skipped on cooldown (no dispatch, no streak); rounds 4 and 7 are
        // half-open probes that fail and re-open. Four dispatched failures.
        assert_eq!(sharded.health().consecutive_failures(dead_shard), 4, "{label}");
        assert_eq!(sharded.health().consecutive_failures(0), 0, "{label}");
        assert_eq!(sharded.degraded_queries(), (SWEEP * 6) as u64, "{label}");
        per_batch
    };

    let first = sweep("first");
    let second = sweep("second");
    assert_eq!(first, second, "the same seed must reproduce the sweep bit for bit");
}

/// A soft deadline cuts retries short: a shard whose schedule needs more
/// retries than the deadline allows is recorded as a deadline-exceeded
/// failure, and the surviving forest replicas still answer (degraded).
#[test]
fn soft_deadline_bounds_retries_and_degrades_instead_of_hanging() {
    let seed = seed_from_env();
    let data_rows = rows(48, seed ^ 0x40);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(6, seed ^ 0x41);
    let spec = ShardSpec::forest(base_spec(Method::BBTree, DivergenceKind::ItakuraSaito, seed), 2);

    let mut sharded = ShardedIndex::build(&spec, &data).unwrap();
    sharded
        .arm_chaos(vec![
            // Shard 0: every query always fails (depth far past the retry
            // budget) and every attempt burns real time, so the deadline
            // expires before the retry budget does.
            Some(
                FaultPlan::with_seed(seed)
                    .with_transient_rate(1.0)
                    .with_transient_depth(u64::MAX)
                    .with_latency(1.0, std::time::Duration::from_millis(2)),
            ),
            None,
        ])
        .unwrap();
    let policy = generous_policy(seed)
        .with_max_retries(1_000)
        .with_deadline(std::time::Duration::from_millis(1));
    let request = Request::uniform(&queries, K);
    let batch = sharded.run_with_policy(&request, 2, &policy).unwrap();
    match batch.availability {
        Outcome::Degraded { shards_answered: 1, shards_failed: 1, .. } => {}
        other => panic!("expected Degraded, got {other:?}"),
    }
    let failure = batch.shard_failures[0].as_ref().unwrap();
    assert!(failure.deadline_exceeded, "the deadline, not the retry budget, must stop the shard");
    assert!(failure.retries < 1_000, "the retry budget must not be exhausted");
}
