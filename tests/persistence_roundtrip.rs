//! Persistence round-trips: for all four backends, save → open must
//! reproduce *identical* kNN neighbor sets and identical cold-pool I/O
//! counters over a seeded 256-query workload — the acceptance criterion of
//! the pluggable-storage refactor. Extends the seeded harness style of
//! `tests/engine_determinism.rs`.

use std::path::PathBuf;
use std::sync::Arc;

use brepartition::prelude::*;

fn hierarchical_workload(n: usize, queries: usize) -> (DenseDataset, Vec<Vec<f64>>) {
    let data =
        HierarchicalSpec { n, dim: 24, clusters: 12, blocks: 6, ..Default::default() }.generate();
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::ItakuraSaito, queries, 0.02, 0xD15C);
    let queries: Vec<Vec<f64>> = workload.iter().map(|q| q.to_vec()).collect();
    (data, queries)
}

fn build_index(data: &DenseDataset) -> BrePartitionIndex {
    BrePartitionIndex::build(
        DivergenceKind::ItakuraSaito,
        data,
        &BrePartitionConfig::default()
            .with_partitions(6)
            .with_leaf_capacity(16)
            .with_page_size(4096),
    )
    .unwrap()
}

fn temp_root(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("brepartition-roundtrip-{}-{name}", std::process::id()))
}

/// Run the batch on both backends and demand bit-identical neighbors,
/// candidates and per-query cold-pool I/O.
fn assert_identical_serving(
    name: &str,
    built: Arc<dyn SearchBackend>,
    reopened: Arc<dyn SearchBackend>,
    queries: &[Vec<f64>],
    k: usize,
) {
    assert_eq!(built.len(), reopened.len(), "{name}: point count");
    assert_eq!(built.dim(), reopened.dim(), "{name}: dimensionality");
    let config = EngineConfig::default().with_threads(4);
    let a = QueryEngine::with_config(built, config).unwrap().run_batch(queries, k).unwrap();
    let b = QueryEngine::with_config(reopened, config).unwrap().run_batch(queries, k).unwrap();
    for (qi, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
        assert_eq!(x.neighbors, y.neighbors, "{name} query {qi}: neighbors diverged");
        assert_eq!(x.candidates, y.candidates, "{name} query {qi}: candidate count diverged");
        assert_eq!(x.io, y.io, "{name} query {qi}: cold-pool I/O diverged");
    }
    assert_eq!(a.report.io, b.report.io, "{name}: aggregate I/O diverged");
}

/// Acceptance criterion: a BrePartition index saved to a file-backed store
/// and reopened answers the 256-query determinism suite with neighbor sets
/// and I/O counts identical to the freshly built in-memory index.
#[test]
fn brepartition_save_open_roundtrip_over_256_queries() {
    let (data, queries) = hierarchical_workload(2_000, 256);
    assert!(queries.len() >= 256);
    let index = build_index(&data);
    let dir = temp_root("bp");
    index.save(&dir).unwrap();

    let reopened = BrePartitionIndex::open(&dir).unwrap();
    assert_eq!(reopened.forest().store().backend_kind(), "file");
    assert_eq!(index.forest().store().backend_kind(), "memory");

    assert_identical_serving(
        "BP",
        Arc::new(BrePartitionBackend::exact(index)),
        Arc::new(BrePartitionBackend::exact(reopened)),
        &queries,
        10,
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The approximate backend reads the same persisted state (transforms and
/// per-dimension moments), so ABP must round-trip identically too.
#[test]
fn approximate_backend_roundtrips_over_256_queries() {
    let (data, queries) = hierarchical_workload(1_200, 256);
    let index = build_index(&data);
    let dir = temp_root("abp");
    index.save(&dir).unwrap();
    let approx = ApproximateConfig::with_probability(0.9);
    let reopened = BrePartitionIndex::open(&dir).unwrap();

    assert_identical_serving(
        "ABP",
        Arc::new(BrePartitionBackend::approximate(index, approx)),
        Arc::new(BrePartitionBackend::approximate(reopened, approx)),
        &queries,
        10,
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Both baselines round-trip through their own index directories (saved
/// through the [`SearchBackend`] trait, reopened through the façade).
#[test]
fn baseline_backends_roundtrip() {
    let (data, queries) = hierarchical_workload(800, 64);
    let kind = DivergenceKind::ItakuraSaito;
    let root = temp_root("baselines");

    let bbt =
        Index::build(&IndexSpec::bbtree(kind).with_leaf_capacity(16).with_page_size(4096), &data)
            .unwrap();
    bbt.save(&root.join("bbt")).unwrap();
    let bbt_reopened = Index::open(&root.join("bbt")).unwrap();
    assert_identical_serving("BBT", bbt.backend(), bbt_reopened.backend(), &queries, 8);

    let vaf = Index::build(&IndexSpec::vafile(kind), &data).unwrap();
    vaf.save(&root.join("vaf")).unwrap();
    let vaf_reopened = Index::open(&root.join("vaf")).unwrap();
    assert_identical_serving("VAF", vaf.backend(), vaf_reopened.backend(), &queries, 8);

    std::fs::remove_dir_all(&root).unwrap();
}

/// A reopened index must keep answering exactly after a save → open → save →
/// open chain (the file backend can serialize itself).
#[test]
fn double_roundtrip_is_stable() {
    let (data, queries) = hierarchical_workload(600, 32);
    let index = build_index(&data);
    let root = temp_root("double");
    index.save(&root.join("first")).unwrap();
    let once = BrePartitionIndex::open(&root.join("first")).unwrap();
    once.save(&root.join("second")).unwrap();
    let twice = BrePartitionIndex::open(&root.join("second")).unwrap();

    assert_identical_serving(
        "BP²",
        Arc::new(BrePartitionBackend::exact(once)),
        Arc::new(BrePartitionBackend::exact(twice)),
        &queries,
        10,
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Sanity: the persisted artifacts detect corruption instead of serving
/// wrong answers.
#[test]
fn corrupted_index_directory_is_rejected() {
    let (data, _) = hierarchical_workload(400, 8);
    let index = build_index(&data);
    let dir = temp_root("corrupt");
    index.save(&dir).unwrap();
    let pages = dir.join("pages.bin");
    let mut bytes = std::fs::read(&pages).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    std::fs::write(&pages, &bytes).unwrap();
    assert!(BrePartitionIndex::open(&dir).is_err(), "flipped page byte must fail the checksum");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Delta persistence: for every method, an index carrying a non-empty
/// delta (fresh inserts *and* tombstones on both the backend and the delta
/// side) must save → open to identical neighbor ids and distances, and an
/// absent delta log must open as an empty delta (backward compatibility
/// with pre-mutability directories).
#[test]
fn delta_state_roundtrips_for_all_four_methods() {
    let (data, queries) = hierarchical_workload(400, 24);
    let root = temp_root("delta");

    for method in Method::ALL {
        let spec = IndexSpec::new(method, DivergenceKind::ItakuraSaito)
            .with_partitions(4)
            .with_leaf_capacity(16)
            .with_page_size(4096);
        let index = Index::build(&spec, &data).unwrap();

        // Writes: 12 inserts derived from (but distinct from) data rows,
        // then tombstones on two backend points and two delta rows.
        let mut inserted = Vec::new();
        for i in 0..12usize {
            let row: Vec<f64> =
                data.row(i * 17 % data.len()).iter().map(|v| v * 1.05 + 0.1).collect();
            inserted.push(index.insert(&row).unwrap());
        }
        for id in [PointId(3), PointId(250), inserted[2], inserted[7]] {
            assert!(index.delete(id).unwrap(), "{method}: {id} should have been live");
        }
        assert_eq!(index.len(), data.len() + 12 - 4, "{method}");

        let dir = root.join(method.short_name());
        index.save(&dir).unwrap();
        let reopened = Index::open(&dir).unwrap();
        assert_eq!(reopened.len(), index.len(), "{method}: live count");
        assert_eq!(reopened.delta().delta_rows(), 12, "{method}: delta rows");
        assert_eq!(reopened.delta().tombstone_count(), 4, "{method}: tombstones");
        for (qi, q) in queries.iter().enumerate() {
            let a = index.query(&QueryRequest::new(q, 8)).unwrap();
            let b = reopened.query(&QueryRequest::new(q, 8)).unwrap();
            assert_eq!(a.neighbors, b.neighbors, "{method} query {qi}: merged results diverged");
        }

        // Dropping the delta log reverts the directory to its static
        // snapshot: it must open as an empty delta over the backend.
        std::fs::remove_file(dir.join(brepartition::DELTA_FILE)).unwrap();
        let legacy = Index::open(&dir).unwrap();
        assert_eq!(legacy.len(), data.len(), "{method}: absent log means empty delta");
        assert!(legacy.delta().is_trivial(), "{method}");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// A compacted index (non-identity id mapping) must also round-trip: the
/// mapping travels in the delta log, so reopened queries keep returning
/// the stable external ids.
#[test]
fn compacted_id_mapping_roundtrips() {
    let (data, queries) = hierarchical_workload(400, 16);
    let index = Index::build(
        &IndexSpec::bbtree(DivergenceKind::ItakuraSaito)
            .with_leaf_capacity(16)
            .with_page_size(4096),
        &data,
    )
    .unwrap();
    for id in [7u32, 100, 399] {
        assert!(index.delete(PointId(id)).unwrap());
    }
    let extra: Vec<f64> = data.row(5).iter().map(|v| v * 1.1 + 0.2).collect();
    let extra_id = index.insert(&extra).unwrap();
    index.compact().unwrap();
    assert!(!index.delta().is_trivial(), "deletes shift ids: the mapping must be explicit");
    assert!(!index.delta().has_pending_writes(), "compaction drains the delta");

    let dir = temp_root("delta-compacted");
    index.save(&dir).unwrap();
    let reopened = Index::open(&dir).unwrap();
    assert_eq!(reopened.len(), index.len());
    for (qi, q) in queries.iter().enumerate() {
        let a = index.query(&QueryRequest::new(q, 8)).unwrap();
        let b = reopened.query(&QueryRequest::new(q, 8)).unwrap();
        assert_eq!(a.neighbors, b.neighbors, "query {qi}");
        for (id, _) in &b.neighbors {
            assert!(!matches!(id.0, 7 | 100 | 399), "query {qi}: a compacted-away id resurfaced");
        }
    }
    // The stable external id of the inserted row still resolves.
    assert!(index.delta().is_live(extra_id));
    assert!(reopened.delta().is_live(extra_id));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corruption and truncation of the delta log are rejected with
/// descriptive errors — never replayed into wrong answers.
#[test]
fn corrupted_or_truncated_delta_log_is_rejected_descriptively() {
    let (data, _) = hierarchical_workload(300, 4);
    let index = Index::build(
        &IndexSpec::bbtree(DivergenceKind::ItakuraSaito)
            .with_leaf_capacity(16)
            .with_page_size(4096),
        &data,
    )
    .unwrap();
    let row: Vec<f64> = data.row(0).iter().map(|v| v + 0.25).collect();
    index.insert(&row).unwrap();
    index.delete(PointId(1)).unwrap();
    let dir = temp_root("delta-corrupt");
    index.save(&dir).unwrap();
    let path = dir.join(brepartition::DELTA_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // A flipped payload byte fails the checksum.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x20;
    std::fs::write(&path, &flipped).unwrap();
    match Index::open(&dir) {
        Err(e) => {
            let message = e.to_string();
            assert!(message.contains("checksum"), "undescriptive error: {message}");
        }
        Ok(_) => panic!("a corrupted delta log must not open"),
    }

    // A truncated log is structurally rejected.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).unwrap();
    match Index::open(&dir) {
        Err(e) => {
            let message = e.to_string();
            assert!(
                message.contains("mismatch") || message.contains("corrupt"),
                "undescriptive error: {message}"
            );
        }
        Ok(_) => panic!("a truncated delta log must not open"),
    }

    // The pristine log restores openability.
    std::fs::write(&path, &pristine).unwrap();
    assert!(Index::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A mutated sharded index (routed inserts, deletes, one compaction)
/// round-trips through its directory layout to bit-identical serving, and
/// the sealed shard envelope rejects tampering the same way the per-shard
/// `spec.meta` does.
#[test]
fn sharded_directory_roundtrips_and_rejects_tampering() {
    let (data, queries) = hierarchical_workload(500, 32);
    let spec = ShardSpec::capacity(
        IndexSpec::brepartition(DivergenceKind::ItakuraSaito)
            .with_partitions(4)
            .with_leaf_capacity(16)
            .with_page_size(4096),
        3,
    );
    let index = ShardedIndex::build(&spec, &data).unwrap();
    for i in 0..9usize {
        let row: Vec<f64> = data.row(i * 31 % data.len()).iter().map(|v| v * 1.04 + 0.1).collect();
        index.insert(&row).unwrap();
    }
    for id in [PointId(2), PointId(data.len() as u32 + 4)] {
        assert!(index.delete(id).unwrap());
    }
    index.compact().unwrap();

    let dir = temp_root("sharded");
    index.save(&dir).unwrap();
    let reopened = ShardedIndex::open(&dir).unwrap();
    assert_eq!(reopened.len(), index.len());
    assert_eq!(reopened.shards(), 3);
    for (qi, q) in queries.iter().enumerate() {
        let a = index.query(&QueryRequest::new(q, 8)).unwrap();
        let b = reopened.query(&QueryRequest::new(q, 8)).unwrap();
        assert_eq!(a.neighbors.len(), b.neighbors.len(), "query {qi}");
        for (rank, ((ga, da), (gb, db))) in a.neighbors.iter().zip(b.neighbors.iter()).enumerate() {
            assert_eq!(ga, gb, "query {qi} rank {rank}: ids across the round-trip");
            assert_eq!(da.to_bits(), db.to_bits(), "query {qi} rank {rank}: distance bits");
        }
    }

    // A flipped byte in the sealed shard envelope fails its checksum.
    let envelope_path = dir.join(brepartition::SHARDS_FILE);
    let pristine = std::fs::read(&envelope_path).unwrap();
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&envelope_path, &flipped).unwrap();
    match ShardedIndex::open(&dir) {
        Err(e) => assert!(e.to_string().contains("checksum"), "undescriptive error: {e}"),
        Ok(_) => panic!("a corrupted shard envelope must not open"),
    }
    std::fs::write(&envelope_path, &pristine).unwrap();

    // A foreign entry in the sharded root is rejected, not ignored.
    std::fs::write(dir.join("notes.txt"), b"scribble").unwrap();
    match ShardedIndex::open(&dir) {
        Err(e) => assert!(e.to_string().contains("foreign"), "undescriptive error: {e}"),
        Ok(_) => panic!("a foreign root entry must not open"),
    }
    std::fs::remove_file(dir.join("notes.txt")).unwrap();

    // A foreign file *inside* a shard subdirectory trips the per-shard
    // directory check the envelope machinery already enforces.
    std::fs::write(dir.join("shard0001").join("extra.bin"), b"junk").unwrap();
    match ShardedIndex::open(&dir) {
        Err(e) => assert!(e.to_string().contains("foreign"), "undescriptive error: {e}"),
        Ok(_) => panic!("a foreign shard entry must not open"),
    }
    std::fs::remove_file(dir.join("shard0001").join("extra.bin")).unwrap();

    // A shard directory swapped in from a *different* sharded index is
    // caught by the id-counter cross-check ("not a shard of this index").
    let (other_data, _) = hierarchical_workload(700, 1);
    let other = ShardedIndex::build(&spec, &other_data).unwrap();
    let other_dir = temp_root("sharded-other");
    other.save(&other_dir).unwrap();
    std::fs::remove_dir_all(dir.join("shard0001")).unwrap();
    copy_dir(&other_dir.join("shard0001"), &dir.join("shard0001"));
    match ShardedIndex::open(&dir) {
        Err(e) => {
            assert!(e.to_string().contains("not a shard"), "undescriptive error: {e}")
        }
        Ok(_) => panic!("a swapped-in shard directory must not open"),
    }

    // The two layouts do not open through each other's entry points.
    assert!(Index::open(&dir).is_err(), "a sharded root is not an unsharded index");
    assert!(
        ShardedIndex::open(&dir.join("shard0000")).is_err(),
        "an unsharded index directory is not a sharded root"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&other_dir).unwrap();
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}
