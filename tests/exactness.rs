//! Cross-crate integration tests: every exact index must agree with brute
//! force on the same workload, for every supported divergence.

use brepartition::prelude::*;

fn proxy(dataset: PaperDataset, n: usize, dim: usize, seed: u64) -> (DenseDataset, DivergenceKind) {
    let spec = dataset.scaled_spec(n).with_points(n).with_dim(dim);
    (spec.generate(seed), spec.divergence)
}

fn assert_distances_match(label: &str, got: &[(PointId, f64)], expected: &[(PointId, f64)]) {
    assert_eq!(got.len(), expected.len(), "{label}: result size mismatch");
    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert!(
            (g.1 - e.1).abs() < 1e-9 * (1.0 + e.1.abs()),
            "{label}: rank {i} distance {} vs expected {}",
            g.1,
            e.1
        );
    }
}

#[test]
fn brepartition_is_exact_on_every_proxy_dataset() {
    for dataset in
        [PaperDataset::Audio, PaperDataset::Fonts, PaperDataset::Deep, PaperDataset::Sift]
    {
        let (data, kind) = proxy(dataset, 600, 48, 1);
        let workload = QueryWorkload::perturbed_from(&data, kind, 5, 0.02, 2);
        let truth = ground_truth_knn(kind, &data, &workload.queries, 10, 4);
        let index = BrePartitionIndex::build(
            kind,
            &data,
            &BrePartitionConfig::default().with_partitions(8).with_page_size(8 * 1024),
        )
        .unwrap();
        for (qi, query) in workload.iter().enumerate() {
            let result = index.knn(query, 10).unwrap();
            assert_distances_match(
                &format!("BrePartition/{dataset}"),
                &result.neighbors,
                truth.neighbors_of(qi),
            );
        }
    }
}

#[test]
fn brepartition_with_auto_partitions_is_exact() {
    let (data, kind) = proxy(PaperDataset::Audio, 800, 64, 3);
    let workload = QueryWorkload::perturbed_from(&data, kind, 4, 0.05, 4);
    let truth = ground_truth_knn(kind, &data, &workload.queries, 20, 4);
    let index = BrePartitionIndex::build(
        kind,
        &data,
        &BrePartitionConfig::default().with_page_size(16 * 1024),
    )
    .unwrap();
    assert!(index.partitions() >= 1 && index.partitions() <= 64);
    for (qi, query) in workload.iter().enumerate() {
        let result = index.knn(query, 20).unwrap();
        assert_distances_match("BrePartition/auto-M", &result.neighbors, truth.neighbors_of(qi));
    }
}

#[test]
fn disk_bbtree_is_exact_on_proxies() {
    let (data, kind) = proxy(PaperDataset::Fonts, 500, 40, 5);
    assert_eq!(kind, DivergenceKind::ItakuraSaito);
    let workload = QueryWorkload::perturbed_from(&data, kind, 4, 0.02, 6);
    let truth = ground_truth_knn(kind, &data, &workload.queries, 15, 4);
    let index = DiskBBTree::build(
        ItakuraSaito,
        &data,
        BBTreeConfig::with_leaf_capacity(16),
        PageStoreConfig::with_page_size(8 * 1024),
    );
    for (qi, query) in workload.iter().enumerate() {
        let mut pool = BufferPool::unbuffered();
        let result = index.knn(&mut pool, query, 15).unwrap();
        let got: Vec<(PointId, f64)> =
            result.neighbors.iter().map(|n| (n.id, n.distance)).collect();
        assert_distances_match("DiskBBTree/Fonts", &got, truth.neighbors_of(qi));
    }
}

#[test]
fn vafile_is_exact_on_proxies() {
    let (data, kind) = proxy(PaperDataset::Sift, 700, 32, 7);
    assert_eq!(kind, DivergenceKind::Exponential);
    let workload = QueryWorkload::perturbed_from(&data, kind, 4, 0.02, 8);
    let truth = ground_truth_knn(kind, &data, &workload.queries, 10, 4);
    let index = VaFile::build(
        Exponential,
        &data,
        VaFileConfig { page_size_bytes: 8 * 1024, ..VaFileConfig::default() },
    );
    for (qi, query) in workload.iter().enumerate() {
        let mut pool = BufferPool::unbuffered();
        let result = index.knn(&mut pool, query, 10);
        assert_distances_match("VaFile/Sift", &result.neighbors, truth.neighbors_of(qi));
    }
}

#[test]
fn all_three_exact_indexes_agree_with_each_other() {
    let (data, kind) = proxy(PaperDataset::Deep, 400, 32, 9);
    let query = data.row(17).to_vec();
    let k = 12;

    let bp = BrePartitionIndex::build(
        kind,
        &data,
        &BrePartitionConfig::default().with_partitions(4).with_page_size(8 * 1024),
    )
    .unwrap();
    let bp_result = bp.knn(&query, k).unwrap();

    let bbt = DiskBBTree::build(
        Exponential,
        &data,
        BBTreeConfig::with_leaf_capacity(16),
        PageStoreConfig::with_page_size(8 * 1024),
    );
    let mut pool = BufferPool::unbuffered();
    let bbt_result = bbt.knn(&mut pool, &query, k).unwrap();

    let vaf = VaFile::build(
        Exponential,
        &data,
        VaFileConfig { page_size_bytes: 8 * 1024, ..VaFileConfig::default() },
    );
    let mut pool = BufferPool::unbuffered();
    let vaf_result = vaf.knn(&mut pool, &query, k);

    for i in 0..k {
        let a = bp_result.neighbors[i].1;
        let b = bbt_result.neighbors[i].distance;
        let c = vaf_result.neighbors[i].1;
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "BP vs BBT at rank {i}");
        assert!((a - c).abs() < 1e-9 * (1.0 + a.abs()), "BP vs VAF at rank {i}");
    }
}

#[test]
fn squared_euclidean_round_trips_through_the_whole_stack() {
    // The squared Euclidean generator is the simplest decomposable
    // divergence; it exercises the pipeline with negative coordinates.
    let data = datagen::synthetic::normal(500, 24, 0.0, 1.0, 11);
    let workload =
        QueryWorkload::perturbed_from(&data, DivergenceKind::SquaredEuclidean, 3, 0.1, 12);
    let truth = ground_truth_knn(DivergenceKind::SquaredEuclidean, &data, &workload.queries, 8, 2);
    let index = BrePartitionIndex::build(
        DivergenceKind::SquaredEuclidean,
        &data,
        &BrePartitionConfig::default().with_partitions(6).with_page_size(4096),
    )
    .unwrap();
    for (qi, query) in workload.iter().enumerate() {
        let result = index.knn(query, 8).unwrap();
        assert_distances_match("BrePartition/SE", &result.neighbors, truth.neighbors_of(qi));
    }
}

#[test]
fn generalized_i_divergence_is_rejected_by_the_partitioned_index() {
    let data = datagen::synthetic::uniform(100, 16, 0.5, 2.0, 13);
    let err = BrePartitionIndex::build(
        DivergenceKind::GeneralizedI,
        &data,
        &BrePartitionConfig::default().with_partitions(4),
    )
    .unwrap_err();
    assert!(err.to_string().contains("not cumulative"));
}
