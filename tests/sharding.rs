//! The sharded serving tier's core guarantees.
//!
//! * **Capacity-mode bit-identity**: for every exact `(Method,
//!   DivergenceKind)` pair, a capacity-sharded index returns neighbor ids
//!   and distances bit-identical to the equivalent unsharded `Index` —
//!   single queries and batches, before and after a save → open cycle.
//!   (ABP is included at probability 1.0, its exactness point.)
//! * **Forest mode**: exact replicas merged stay bit-identical to the
//!   unsharded index; approximate replicas merged never recall *less* than
//!   a single replica — a true neighbor found by any replica survives the
//!   `(distance, id)` merge, because fewer than k points can outrank it.
//! * **Thread budget**: the fan-out splits one worker budget across shards
//!   instead of multiplying it — pinned by counting concurrently live
//!   backend searches from inside a probe backend.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use brepartition::prelude::*;

const DIM: usize = 8;

/// Strictly positive rows keep every divergence in domain.
fn rows(n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..DIM)
                .map(|j| {
                    let x = (i as u64).wrapping_mul(2654435761).wrapping_add(j as u64 * 97 + salt);
                    0.2 + (x % 1000) as f64 / 125.0
                })
                .collect()
        })
        .collect()
}

fn spec_for(method: Method, kind: DivergenceKind) -> IndexSpec {
    let spec = IndexSpec::new(method, kind)
        .with_partitions(2)
        .with_leaf_capacity(8)
        .with_page_size(1024)
        .with_sample_size(64)
        .with_seed(0x5EED);
    // p = 1.0 is the exactness point of the approximate search, the only
    // operating point where a bit-identity comparison is sound for ABP.
    if method == Method::Approximate {
        spec.with_probability(1.0)
    } else {
        spec
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("brepartition-sharding-{}-{tag}", std::process::id()))
}

#[track_caller]
fn assert_bit_identical(ctx: &str, got: &[(PointId, f64)], want: &[(PointId, f64)]) {
    assert_eq!(got.len(), want.len(), "{ctx}: neighbor count");
    for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.0, w.0, "{ctx}: id at rank {rank}");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{ctx}: distance bits at rank {rank}");
    }
}

/// The acceptance criterion: capacity-mode `ShardedIndex` ≡ unsharded
/// `Index`, bit for bit, for every exact pair — including after mutation
/// and across a save → open cycle.
#[test]
fn capacity_mode_is_bit_identical_to_unsharded_for_every_exact_pair() {
    let data_rows = rows(60, 1);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(12, 77);
    for method in Method::ALL {
        for kind in DivergenceKind::ALL {
            let base = spec_for(method, kind);
            if base.validate().is_err() {
                continue; // BP/ABP over GI, pinned by the oracle suite
            }
            let label = format!("{}/{}", method.short_name(), kind.short_name());
            let plain = Index::build(&base, &data).unwrap();
            let sharded = ShardedIndex::build(&ShardSpec::capacity(base, 3), &data).unwrap();
            assert_eq!(sharded.len(), plain.len(), "{label}: build size");

            // Identical mutations on both sides: inserts keep issuing the
            // same global ids, deletes agree on liveness.
            for (i, row) in rows(6, 9).iter().enumerate() {
                let a = plain.insert(row).unwrap();
                let b = sharded.insert(row).unwrap();
                assert_eq!(a, b, "{label}: insert {i} id");
            }
            for target in [3u32, 17, 41, 62, 200] {
                let a = plain.delete(PointId(target)).unwrap();
                let b = sharded.delete(PointId(target)).unwrap();
                assert_eq!(a, b, "{label}: delete({target}) liveness");
            }
            assert_eq!(sharded.len(), plain.len(), "{label}: live size after mutation");

            // Single queries and a batch, bit-identical.
            for (qi, q) in queries.iter().enumerate() {
                let got = sharded.query(&QueryRequest::new(q, 7)).unwrap();
                let want = plain.query(&QueryRequest::new(q, 7)).unwrap();
                assert_bit_identical(
                    &format!("{label} query {qi}"),
                    &got.neighbors,
                    &want.neighbors,
                );
            }
            let got = sharded.run_with_budget(&Request::uniform(&queries, 9), 4).unwrap();
            let want = plain.run(&Request::uniform(&queries, 9)).unwrap();
            for (qi, (g, w)) in got.outcomes.iter().zip(want.outcomes.iter()).enumerate() {
                assert_bit_identical(&format!("{label} batch {qi}"), &g.neighbors, &w.neighbors);
            }

            // Across a save → open cycle (with compaction in between on the
            // sharded side, which must not disturb global ids).
            sharded.compact().unwrap();
            let dir = temp_dir(&label.replace('/', "-"));
            sharded.save(&dir).unwrap();
            let reopened = ShardedIndex::open(&dir).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            assert_eq!(reopened.len(), plain.len(), "{label}: reopened size");
            let got = reopened.run_with_budget(&Request::uniform(&queries, 9), 2).unwrap();
            for (qi, (g, w)) in got.outcomes.iter().zip(want.outcomes.iter()).enumerate() {
                assert_bit_identical(&format!("{label} reopened {qi}"), &g.neighbors, &w.neighbors);
            }
        }
    }
}

/// Forest replicas of an *exact* method are redundant copies: the merged,
/// deduplicated top-k is still bit-identical to the unsharded index.
#[test]
fn forest_mode_over_exact_replicas_matches_unsharded() {
    let data_rows = rows(80, 3);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(10, 55);
    let base = spec_for(Method::BBTree, DivergenceKind::ItakuraSaito);
    let plain = Index::build(&base, &data).unwrap();
    let forest = ShardedIndex::build(&ShardSpec::forest(base, 3), &data).unwrap();
    assert_eq!(forest.len(), plain.len());
    let got = forest.run_with_budget(&Request::uniform(&queries, 8), 4).unwrap();
    let want = plain.run(&Request::uniform(&queries, 8)).unwrap();
    for (qi, (g, w)) in got.outcomes.iter().zip(want.outcomes.iter()).enumerate() {
        assert_bit_identical(&format!("forest query {qi}"), &g.neighbors, &w.neighbors);
    }
}

/// Forest mode's reason to exist: merging N randomized approximate
/// replicas never recalls less than any single replica, and writes apply
/// to every replica in lockstep.
#[test]
fn forest_mode_merging_never_loses_recall_and_routes_writes_to_all_replicas() {
    let data_rows = rows(400, 5);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let queries = rows(24, 91);
    let kind = DivergenceKind::ItakuraSaito;
    let k = 10;
    let truth = ground_truth_knn(kind, &data, &DenseDataset::from_rows(&queries).unwrap(), k, 2);

    let base = IndexSpec::approximate(kind)
        .with_partitions(4)
        .with_leaf_capacity(8)
        .with_page_size(2048)
        .with_probability(0.55);
    let spec = ShardSpec::forest(base, 4);
    let forest = ShardedIndex::build(&spec, &data).unwrap();
    // Replica 0 alone, under its derived seed — the single-index baseline.
    let single = Index::build(&spec.shard_spec(0), &data).unwrap();

    let merged = forest.run_with_budget(&Request::uniform(&queries, k), 4).unwrap();
    let alone = single.run(&Request::uniform(&queries, k)).unwrap();
    let mut merged_recall = 0.0;
    let mut alone_recall = 0.0;
    for qi in 0..queries.len() {
        let exact = truth.neighbors_of(qi);
        merged_recall += recall(&merged.outcomes[qi].neighbors, exact);
        alone_recall += recall(&alone.outcomes[qi].neighbors, exact);
    }
    assert!(
        merged_recall >= alone_recall,
        "merging replicas lost recall: {merged_recall} < {alone_recall}"
    );

    // Writes hit every replica: an insert is immediately its own 1-NN, a
    // deleted point never resurfaces from a stale replica.
    let forest = forest;
    let fresh: Vec<f64> = data.row(0).iter().map(|v| v * 1.01 + 0.05).collect();
    let id = forest.insert(&fresh).unwrap();
    assert_eq!(id.0 as usize, data.len());
    let hit = forest.query(&QueryRequest::new(&fresh, 1)).unwrap();
    assert_eq!(hit.neighbors[0].0, id);
    assert!(forest.delete(id).unwrap());
    assert!(!forest.delete(id).unwrap(), "deletes stay idempotent");
    let gone = forest.query(&QueryRequest::new(&fresh, 5)).unwrap();
    assert!(gone.neighbors.iter().all(|(n, _)| *n != id), "no replica may resurrect a delete");
    assert_eq!(forest.len(), data.len());
}

/// Counters shared across every probe shard: one global live count and its
/// high-water mark. Per-shard counters would each peak at 1 and say nothing
/// about the fleet-wide concurrency this test pins.
#[derive(Default)]
struct Counters {
    live: AtomicUsize,
    peak: AtomicUsize,
}

/// A probe backend that records how many searches run at the same time
/// across all shards sharing its counters.
struct ConcurrencyProbe {
    counters: Arc<Counters>,
}

impl ConcurrencyProbe {
    fn sharing(counters: &Arc<Counters>) -> Arc<Self> {
        Arc::new(ConcurrencyProbe { counters: Arc::clone(counters) })
    }
}

impl SearchBackend for ConcurrencyProbe {
    fn name(&self) -> &'static str {
        "probe"
    }
    fn dim(&self) -> usize {
        2
    }
    fn len(&self) -> usize {
        1
    }
    fn new_scratch(&self) -> Scratch {
        Scratch::new(BufferPool::new(0))
    }
    fn knn(
        &self,
        _scratch: &mut Scratch,
        _query: &[f64],
        k: usize,
    ) -> std::result::Result<BackendAnswer, EngineError> {
        let live = self.counters.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.counters.peak.fetch_max(live, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(2));
        self.counters.live.fetch_sub(1, Ordering::SeqCst);
        Ok(BackendAnswer {
            neighbors: vec![(PointId(0), 0.0); k.min(1)],
            candidates: 1,
            io: IoStats::default(),
        })
    }
    fn save(&self, _dir: &std::path::Path) -> std::result::Result<(), EngineError> {
        Err(EngineError::Config("probe backends do not persist".to_string()))
    }
    fn export_rows(&self) -> std::result::Result<DenseDataset, EngineError> {
        Err(EngineError::Config("probe backends hold no rows".to_string()))
    }
}

/// The oversubscription pin: 8 shards sharing a budget of 4 never run more
/// than 4 concurrent searches — the budget is split, not multiplied.
#[test]
fn shard_fanout_splits_one_thread_budget_instead_of_multiplying_it() {
    let budget = 4;
    let shards = 8;
    let counters = Arc::new(Counters::default());
    let backends: Vec<Arc<dyn SearchBackend>> = (0..shards)
        .map(|_| ConcurrencyProbe::sharing(&counters) as Arc<dyn SearchBackend>)
        .collect();
    let engine = ShardedEngine::new(backends, budget).unwrap();
    assert_eq!(engine.shards(), shards);
    assert_eq!(engine.budget(), budget);
    assert_eq!(engine.concurrent_shards(), budget);
    assert_eq!(engine.shard_threads(), vec![1; shards]);
    assert_eq!(engine.shard_threads().iter().sum::<usize>(), shards);

    let queries: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, 1.0]).collect();
    let requests: Vec<EngineRequest<'_>> =
        queries.iter().map(|q| EngineRequest::new(q, 1)).collect();
    let results = engine.run_requests(&requests).unwrap();
    assert_eq!(results.len(), shards);
    let peak = counters.peak.load(Ordering::SeqCst);
    assert!(peak > 1, "the probe never observed concurrency — the pin is vacuous");
    assert!(
        peak <= budget,
        "{peak} concurrent searches exceeded the budget of {budget} (oversubscribed fan-out)"
    );

    // A budget covering every shard divides itself across them.
    let spare = Arc::new(Counters::default());
    let wide = ShardedEngine::new(
        (0..3).map(|_| ConcurrencyProbe::sharing(&spare) as Arc<dyn SearchBackend>).collect(),
        8,
    )
    .unwrap();
    assert_eq!(wide.shard_threads(), vec![3, 3, 2]);
    assert_eq!(wide.shard_threads().iter().sum::<usize>(), 8);
    assert_eq!(wide.concurrent_shards(), 3);

    // Degenerate configurations are rejected, not served.
    assert!(ShardedEngine::new(Vec::new(), 4).is_err());
    assert!(ShardedEngine::new(
        vec![ConcurrencyProbe::sharing(&spare) as Arc<dyn SearchBackend>],
        0
    )
    .is_err());
}

/// Regression: deleting every point homed on one capacity shard must not
/// kill the sharded index. The emptied shard *parks* — `compact()`
/// succeeds, queries keep serving bit-identically from the surviving
/// shards, save → open round-trips the parked shard, and a later insert
/// routed there revives it. (Earlier releases aborted the whole sharded
/// compact with `EmptyDataset` as soon as any shard's live set hit zero.)
#[test]
fn capacity_shard_emptied_by_deletes_parks_and_revives() {
    const N: u32 = 48;
    let data_rows = rows(N as usize, 7);
    let data = DenseDataset::from_rows(&data_rows).unwrap();
    let base = spec_for(Method::BBTree, DivergenceKind::SquaredEuclidean);
    let sspec = ShardSpec::capacity(base, 3);
    let sharded = ShardedIndex::build(&sspec, &data).unwrap();
    // An unsharded twin mutated identically supplies the ground truth.
    let plain = Index::build(&base, &data).unwrap();

    // Delete the entire slice homed on shard 0.
    let victims: Vec<u32> = (0..N).filter(|id| sspec.route(PointId(*id)) == 0).collect();
    assert!(!victims.is_empty(), "the salt routed nothing to shard 0; adjust the dataset");
    for id in &victims {
        assert!(sharded.delete(PointId(*id)).unwrap(), "victim {id} was live");
        assert!(plain.delete(PointId(*id)).unwrap());
    }
    assert_eq!(sharded.len(), (N as usize) - victims.len());

    // Compacting with a fully-emptied shard parks it instead of failing.
    sharded.compact().unwrap();

    // The surviving shards keep serving, bit-identical to the twin.
    let queries = rows(8, 23);
    for (qi, q) in queries.iter().enumerate() {
        let got = sharded.query(&QueryRequest::new(q, 5)).unwrap();
        let want = plain.query(&QueryRequest::new(q, 5)).unwrap();
        assert_bit_identical(&format!("parked query {qi}"), &got.neighbors, &want.neighbors);
    }

    // The parked shard survives a save → open cycle.
    let dir = temp_dir("parked-shard");
    sharded.save(&dir).unwrap();
    let reopened = ShardedIndex::open(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(reopened.len(), sharded.len(), "reopened live size");

    // Reinsert until an issued id routes back to shard 0: the parked
    // shard revives and serves its new point (distance 0 ⇒ its own 1-NN).
    let mut fresh_rows = rows(64, 999).into_iter();
    let mut next = N;
    loop {
        let row = fresh_rows.next().expect("64 inserts never routed to shard 0");
        let id = reopened.insert(&row).unwrap();
        assert_eq!(id.0, next, "global ids stay monotonic across the parked epoch");
        next += 1;
        if sspec.route(id) == 0 {
            let hit = reopened.query(&QueryRequest::new(&row, 1)).unwrap();
            assert_eq!(hit.neighbors[0].0, id, "the revived shard must serve its new point");
            break;
        }
    }
}

/// Capacity-mode build rejects a shard count the dataset cannot populate,
/// and the spec rails reject nonsense before any build work.
#[test]
fn sharded_build_rejects_unbuildable_configurations() {
    let data = DenseDataset::from_rows(&rows(3, 1)).unwrap();
    let base = spec_for(Method::BBTree, DivergenceKind::SquaredEuclidean);
    // 3 points over 64 shards: some capacity shard must come up empty.
    let err = ShardedIndex::build(&ShardSpec::capacity(base, 64), &data).unwrap_err();
    assert!(matches!(err, Error::Spec(_)), "expected a spec error, got {err:?}");
    assert!(err.to_string().contains("shard"), "unhelpful error: {err}");
    // Zero shards is invalid in any mode.
    assert!(ShardedIndex::build(&ShardSpec::forest(base, 0), &data).is_err());
    // Forest replicas build fine over tiny data — every replica is full.
    let forest = ShardedIndex::build(&ShardSpec::forest(base, 5), &data).unwrap();
    assert_eq!(forest.len(), 3);
}
